"""The simulated BlueBox cluster.

Nodes host service instances; the message queue load-balances operation
requests across them.  The cluster is driven by the discrete-event
kernel (:mod:`repro.bluebox.clock`), so every run is deterministic given
a seed, and simulated days finish in real milliseconds.

Failure semantics follow the paper (Section 3.2): when an instance dies
mid-request, the message queue re-delivers the message to another
instance, so "the failure of any instance will result in only minimal
delays as other instances automatically compensate".

A node's request slots are shared by every service deployed on it —
the cluster-operations reality behind the paper's Section 5 remark that
"because instances are often shared across services, even unrelated
service operations may be blocked".
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, List, Optional

from ..faults.retry import RetryPolicy
from ..observe import MetricsRegistry, SpanTracer
from ..sched.admission import (
    DELAY as ADMIT_DELAY,
    SERVER_BUSY_QNAME,
    SHED as ADMIT_SHED,
    make_admission,
)
from ..sched.fair import make_policy
from .clock import SimKernel
from .messagequeue import (
    Message,
    MessageQueue,
    PRIORITY_NORMAL,
    ReplyTo,
    _trace_ids,
)
from .monitoring import (
    Counters,
    DEADLETTER_ENQUEUED,
    OPERATION_FAULT,
    RETRY_SCHEDULED,
    TraceLog,
)
from .store import StoreError
from .services import (
    OperationContext,
    ResponseEnvelope,
    Service,
    ServiceFault,
)
from .wsdl import WsdlDocument


class Node:
    """One machine in the cluster."""

    def __init__(self, node_id: str, slots: int = 1):
        self.id = node_id
        self.slots = slots
        self.busy = 0
        self.alive = True
        self.services: Dict[str, "ServiceInstance"] = {}
        #: arbitrary per-node memory — Vinz hangs the fiber cache here
        self.memory: Dict[str, Any] = {}
        # statistics
        self.processed = 0
        self.busy_time = 0.0

    @property
    def free_slots(self) -> int:
        return self.slots - self.busy if self.alive else 0

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.id} {state} {self.busy}/{self.slots} busy>"


class ServiceInstance:
    """One service deployed on one node."""

    _ids = itertools.count(1)

    def __init__(self, node: Node, service: Service):
        self.id = f"{service.name}@{node.id}"
        self.node = node
        self.service = service
        self.processed = 0

    def __repr__(self) -> str:
        return f"<Instance {self.id}>"


class _InFlight:
    """A request being processed; ``valid`` is cleared on node failure."""

    def __init__(self, message: Message, instance: ServiceInstance,
                 started: float):
        self.message = message
        self.instance = instance
        self.started = started
        self.valid = True
        self.context: Optional[OperationContext] = None
        #: the operation-window span (0 when tracing is disabled)
        self.span_id = 0
        #: the window's sealed journal batch (durable store only),
        #: committed when the window completes, discarded if it dies
        self.batch = None


class Cluster:
    """The simulated BlueBox environment.

    Typical setup::

        cluster = Cluster(seed=1)
        cluster.add_nodes(4, slots=2)
        cluster.deploy(my_service)
        envelope = cluster.call("MyService", "DoThing", {"x": 1})
    """

    def __init__(self, seed: int = 0, delivery_latency: float = 0.002,
                 redelivery_delay: float = 0.05, trace: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 spans: Optional[bool] = None,
                 scheduler: Any = None,
                 admission: Any = None):
        self.kernel = SimKernel()
        #: message ordering is the scheduling policy's job
        #: (repro.sched.fair): None/"strict" reproduces the paper's
        #: strict priority heap; "fair" is deficit round-robin across
        #: workflows with priority aging
        self.queue = MessageQueue(policy=make_policy(scheduler))
        #: optional admission control (repro.sched.admission): depth/
        #: in-flight watermarks that delay or shed work at the front
        #: door.  None (the default) accepts everything, as the paper's
        #: production system does.
        self.admission = make_admission(admission)
        #: causal span tracing (repro.observe); follows ``trace`` unless
        #: set explicitly.  Hot paths guard on the single ``enabled``
        #: flag, so a disabled tracer allocates nothing.
        self.tracer = SpanTracer(enabled=trace if spans is None else spans)
        self.metrics = MetricsRegistry(enabled=self.tracer.enabled)
        self.queue.tracer = self.tracer
        self.queue.metrics = self.metrics
        self.queue.now_fn = lambda: self.kernel.now
        self.rng = random.Random(seed)
        self.delivery_latency = delivery_latency
        self.redelivery_delay = redelivery_delay
        #: governs fault retries (drops, store faults): backoff delays,
        #: attempt caps, timeouts.  The platform default reproduces the
        #: legacy constant-delay, per-message-cap behaviour; campaigns
        #: pass RetryPolicy.default() (or per-message policies) for
        #: bounded exponential backoff and dead-lettering.
        self.retry_policy = retry_policy or \
            RetryPolicy.platform(redelivery_delay)
        #: optional FaultInjector (repro.faults), wired by install()
        self.injector = None
        #: the distributed lock manager (repro.bluebox.locks), wired by
        #: VinzEnvironment.  When it has leases enabled the cluster
        #: heartbeats long operation windows, validates fencing tokens
        #: at window completion, and — as the lock manager's
        #: ``lease_breaker`` — aborts a zombie holder's in-flight
        #: window before an expiry/steal hands the lock to a new owner
        self.lock_manager = None
        #: a window-capable store (repro.durastore.DurableStore), wired
        #: by VinzEnvironment when the shared store supports group
        #: commit: each operation window's mutations seal into one
        #: journal batch, committed as the window completes
        self.durable_store = None
        #: called with each dead-lettered Message (Vinz fails the
        #: owning task/fiber so nothing hangs silently)
        self.dead_letter_listeners: List[Callable[[Message], None]] = []
        self.nodes: Dict[str, Node] = {}
        self.services: Dict[str, Service] = {}
        self.trace = TraceLog(enabled=trace)
        self.counters = Counters()
        self._in_flight: List[_InFlight] = []
        self._node_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def add_node(self, node_id: Optional[str] = None, slots: int = 1) -> Node:
        node = Node(node_id or f"node-{next(self._node_seq)}", slots=slots)
        self.nodes[node.id] = node
        # a new node hosts every already-deployed service
        for service in self.services.values():
            node.services[service.name] = ServiceInstance(node, service)
        self._kick_all()
        return node

    def add_nodes(self, count: int, slots: int = 1) -> List[Node]:
        return [self.add_node(slots=slots) for _ in range(count)]

    def deploy(self, service: Service,
               node_ids: Optional[List[str]] = None) -> Service:
        """Deploy ``service`` on the given nodes (default: all nodes)."""
        self.services[service.name] = service
        targets = ([self.nodes[nid] for nid in node_ids] if node_ids
                   else list(self.nodes.values()))
        for node in targets:
            node.services[service.name] = ServiceInstance(node, service)
        service.on_deployed(self)
        self._kick(service.name)
        return service

    def get_wsdl(self, service_name: str) -> WsdlDocument:
        """Fetch a service's interface document (what deflink does)."""
        service = self.services.get(service_name)
        if service is None:
            raise KeyError(f"no service named {service_name!r} is deployed")
        return service.wsdl

    def find_service_by_namespace(self, namespace: str) -> Optional[Service]:
        for service in self.services.values():
            if service.namespace == namespace:
                return service
        return None

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def send(self, service: str, operation: str, body: Dict[str, Any],
             priority: int = PRIORITY_NORMAL,
             reply_to: Optional[ReplyTo] = None,
             max_attempts: int = 10,
             affinity: Optional[str] = None,
             retry_policy: Optional[RetryPolicy] = None,
             parent_span: int = 0) -> Message:
        """Place a message on the queue (asynchronous).

        ``parent_span`` is the causal span that initiated this send
        (the sender's operation window or fiber run); the message's
        queue-hop span becomes its child.
        """
        if service not in self.services:
            raise KeyError(f"no service named {service!r} is deployed")
        message = self.queue.make_message(service, operation, body,
                                          priority=priority,
                                          reply_to=reply_to,
                                          now=self.kernel.now,
                                          max_attempts=max_attempts,
                                          affinity=affinity,
                                          retry_policy=retry_policy,
                                          parent_span=parent_span)
        if self.admission is not None and not self._admit(message):
            return message
        self.queue.enqueue(message, self.kernel.now)
        self.trace.record(self.kernel.now, "enqueue", service=service,
                          operation=operation, msg=message.id,
                          priority=priority, **_trace_ids(body))
        self.kernel.schedule(self.delivery_latency,
                             lambda: self._kick(service))
        return message

    def _admit(self, message: Message) -> bool:
        """Run a new message through admission control.

        Returns True when the message was enqueued normally should
        proceed (ACCEPT); on DELAY the enqueue is rescheduled after a
        backoff, on SHED the caller is answered immediately with a
        retryable ServerBusy fault — in both cases False is returned
        and :meth:`send` stops there.
        """
        service = message.service
        in_flight = sum(1 for r in self._in_flight
                        if r.message.service == service)
        backlog = self.queue.peek_depth(service) + in_flight
        slots = sum(n.slots for n in self.nodes.values()
                    if n.alive and service in n.services)
        # a request nobody awaits can only be delayed, never shed:
        # there is no caller to hand the ServerBusy fault to
        sheddable = message.reply_to is not None
        verdict, delay = self.admission.decide(
            service, message.operation, backlog, slots, sheddable)
        if verdict == ADMIT_SHED:
            self._record_admission(message, verdict, backlog, delay)
            self._route_reply(message.reply_to, ResponseEnvelope(
                fault_qname=SERVER_BUSY_QNAME,
                fault_message=f"{service}.{message.operation} shed: "
                              f"backlog {backlog} over {slots} slots"),
                parent_span=message.parent_span)
            return False
        if verdict == ADMIT_DELAY:
            self._record_admission(message, verdict, backlog, delay)
            self.kernel.schedule(
                delay, lambda m=message: (
                    self.queue.enqueue(m, self.kernel.now),
                    self.kernel.schedule(self.delivery_latency,
                                         lambda: self._kick(m.service))))
            return False
        return True

    def _record_admission(self, message: Message, verdict: str,
                          backlog: int, delay: float) -> None:
        self.counters.incr(f"admission.{verdict}")
        self.trace.record(self.kernel.now, f"admission-{verdict}",
                          service=message.service,
                          operation=message.operation, msg=message.id,
                          backlog=backlog, delay=delay)
        if self.metrics.enabled:
            self.metrics.counter(
                "sched.admission.shed" if verdict == ADMIT_SHED
                else "sched.admission.delayed").inc()
            self.metrics.gauge(
                f"sched.backlog.{message.service}").set(backlog)
        if self.tracer.enabled:
            span = self.tracer.begin(
                f"sched:{verdict}:{message.service}", kind="sched",
                start=self.kernel.now,
                parent_id=message.parent_span or None, msg=message.id,
                service=message.service, operation=message.operation,
                backlog=backlog, delay=round(delay, 6),
                **_trace_ids(message.body))
            self.tracer.end(span, end=self.kernel.now + delay)

    def call(self, service: str, operation: str, body: Dict[str, Any],
             priority: int = PRIORITY_NORMAL,
             timeout: Optional[float] = None) -> ResponseEnvelope:
        """Synchronous call from *outside* the cluster.

        Runs the simulation until the response arrives (or the optional
        virtual-time timeout passes).
        """
        holder: List[ResponseEnvelope] = []

        def callback(response_body: Dict[str, Any]) -> None:
            holder.append(ResponseEnvelope.from_body(response_body))

        self.send(service, operation, body, priority=priority,
                  reply_to=ReplyTo(callback=callback))
        deadline = (self.kernel.now + timeout) if timeout is not None else None
        satisfied = self.kernel.run_until(lambda: bool(holder),
                                          deadline=deadline)
        if not satisfied:
            raise TimeoutError(
                f"{service}.{operation} did not respond "
                f"(queue depth {self.queue.total_depth()})")
        return holder[0]

    def call_inline(self, service_name: str, operation: str,
                    body: Dict[str, Any],
                    parent_context: Optional[OperationContext] = None
                    ) -> ResponseEnvelope:
        """A *synchronous* service request, bypassing the queue.

        This is the path the paper prescribes for requests from a
        future's background thread and for operations the programmer
        marks synchronous (Section 3.2): the sender blocks while the
        operation runs, so the time is charged to the sender's own slot.
        """
        service = self.services.get(service_name)
        if service is None:
            raise KeyError(f"no service named {service_name!r} is deployed")
        hosts = [node for node in self.nodes.values()
                 if node.alive and service_name in node.services]
        if not hosts:
            raise KeyError(f"no alive instance of {service_name!r}")
        node = self.rng.choice(hosts)
        instance = node.services[service_name]
        message = self.queue.make_message(service_name, operation, body,
                                          now=self.kernel.now)
        context = OperationContext(self, instance, message)
        self.counters.incr(f"sync.{service_name}.{operation}")
        try:
            value = service.handle(context, operation, body)
            envelope = ResponseEnvelope(value=value)
        except ServiceFault as fault:
            envelope = ResponseEnvelope(fault_qname=fault.qname,
                                        fault_message=fault.message)
        context.flush_outbox()  # synchronous call: effects are immediate
        envelope.duration = context.charged + 2 * self.delivery_latency
        if parent_context is not None:
            # the synchronous caller pays for the whole round trip
            parent_context.charge(envelope.duration)
        return envelope

    def run_until_idle(self) -> float:
        return self.kernel.run_until_idle()

    def run_until(self, predicate: Callable[[], bool],
                  deadline: Optional[float] = None) -> bool:
        return self.kernel.run_until(predicate, deadline=deadline)

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------

    def _kick_all(self) -> None:
        for service_name in self.queue.services_with_messages():
            self._kick(service_name)

    def _kick(self, service_name: str) -> None:
        """Deliver queued messages for a service while slots are free."""
        while self._dispatch_one(service_name):
            pass

    def _dispatch_one(self, service_name: str) -> bool:
        pending = self.queue.peek_message(service_name)
        if pending is None:
            return False
        instance = self._pick_instance(service_name, pending.affinity)
        if instance is None:
            return False
        message = self.queue.pop_next(service_name, self.kernel.now)
        if message is None:  # pragma: no cover - guarded by peek
            return False
        # the hop span this delivery belongs to — captured now because a
        # duplicate-injection push_back below re-points message.span_id
        # at the duplicate's own fresh hop span
        hop_span = message.span_id
        if self.injector is not None:
            decision = self.injector.on_deliver(message)
            if decision is not None:
                action, delay = decision
                if action == "drop":
                    # at-least-once semantics: the lost delivery
                    # consumes an attempt; redelivery (or the DLQ)
                    # is driven by the message's retry policy
                    self._retry_or_dead_letter(message, "delivery dropped")
                    return True
                if action == "delay":
                    self.kernel.schedule(
                        max(delay, 0.0),
                        lambda m=message: (self.queue.push_back(m),
                                           self._kick(m.service)))
                    return True
                if action == "duplicate":
                    # deliver now *and* enqueue the same message again
                    # (same id — receivers must be idempotent)
                    self.queue.duplicated += 1
                    self.queue.push_back(message)
        if message.affinity is not None:
            if instance.node.id == message.affinity:
                self.counters.incr("placement.affinity-hit")
            else:
                self.counters.incr("placement.affinity-miss")
        self._process(instance, message, hop_span=hop_span)
        return True

    def _kick_node(self, node: Node) -> None:
        """A slot freed on ``node``: deliver waiting work in *global*
        priority order across every service the node hosts — this is
        what keeps interactive traffic ahead of batch AwakeFiber storms
        (paper Sections 3.2 and 5)."""
        while True:
            best = None
            for service_name in node.services:
                peek = self.queue.peek_priority(service_name)
                if peek is not None and (best is None or peek < best[0]):
                    best = (peek, service_name)
            if best is None:
                return
            if not self._dispatch_one(best[1]):
                return

    def _pick_instance(self, service_name: str,
                       affinity: Optional[str] = None
                       ) -> Optional[ServiceInstance]:
        """Load balancing: the free instance on the least-busy node.

        A message's ``affinity`` hint wins when that node can take the
        work right now; otherwise normal balancing applies (the hint is
        soft — correctness never depends on it).
        """
        if affinity is not None:
            preferred = self.nodes.get(affinity)
            if preferred is not None and preferred.alive \
                    and service_name in preferred.services \
                    and preferred.free_slots > 0:
                return preferred.services[service_name]
        candidates = [node.services[service_name]
                      for node in self.nodes.values()
                      if node.alive and service_name in node.services
                      and node.free_slots > 0]
        if not candidates:
            return None
        # least-loaded: rank by busy *fraction*, not absolute busy
        # count, so a 2-slot node at 1/2 ranks behind an 8-slot node at
        # 1/8 on heterogeneous clusters (identical ordering when every
        # node has the same slot count)
        least = min(c.node.busy / c.node.slots for c in candidates)
        pool = [c for c in candidates
                if c.node.busy / c.node.slots == least]
        return self.rng.choice(pool)

    def _process(self, instance: ServiceInstance, message: Message,
                 hop_span: int = 0) -> None:
        node = instance.node
        node.busy += 1
        started = self.kernel.now
        record = _InFlight(message, instance, started)
        self._in_flight.append(record)
        self.trace.record(started, "deliver", service=message.service,
                          operation=message.operation, msg=message.id,
                          node=node.id, **_trace_ids(message.body))
        context = OperationContext(self, instance, message)
        record.context = context
        if self.tracer.enabled:
            record.span_id = self.tracer.begin(
                f"op:{message.service}.{message.operation}", kind="operation",
                start=started, parent_id=hop_span or None, node=node.id,
                msg=message.id, **_trace_ids(message.body))
            context.span_id = record.span_id
        if self.durable_store is not None:
            self.durable_store.begin_window()
        try:
            value = instance.service.handle(context, message.operation,
                                            message.body)
            envelope = ResponseEnvelope(value=value)
        except ServiceFault as fault:
            envelope = ResponseEnvelope(fault_qname=fault.qname,
                                        fault_message=fault.message)
        except StoreError as err:
            # a store IO fault (or injected corruption) surfaced while
            # processing: abort the window — roll back state, free the
            # slot — and retry the message per its policy
            if self.durable_store is not None:
                self.durable_store.abort_window()
            self._abort_window(record, f"store fault: {err}")
            return
        if self.durable_store is not None:
            if record.valid:
                # group commit: the window's writes become one journal
                # batch; its IO cost lands inside the window duration
                record.batch = self.durable_store.seal_window()
                if record.batch is not None:
                    context.charge(record.batch.cost)
            else:
                # the node died mid-handler (crash-on-persist): the
                # abort hooks already rolled state back; the buffered
                # records must never reach the journal
                self.durable_store.abort_window()
        duration = max(context.charged, 1e-6)
        if self.injector is not None:
            duration *= self.injector.slow_factor(node.id, started)
        if not record.valid:
            # the node died (or was crashed by the injector) while the
            # handler ran: fail_node already rolled back and requeued
            self._kick_node(node)
            return
        self._schedule_heartbeats(record, duration)
        self.kernel.schedule(
            duration, lambda: self._complete(record, envelope, duration))

    @staticmethod
    def _window_owner(record: "_InFlight") -> str:
        """The lock-owner identity this window's handler used
        (one place: LockManager.owner_node parses it back)."""
        return f"{record.instance.id}#{record.message.id}"

    def _schedule_heartbeats(self, record: "_InFlight",
                             duration: float) -> None:
        """Keep a long window's lock leases alive while its node is.

        The chain self-terminates: each beat reschedules only while the
        window is still in flight on a live node, so `run_until_idle`
        always drains.  A crashed node stops beating — which is exactly
        what lets its leases lapse and recovery begin.
        """
        lm = self.lock_manager
        if lm is None or lm.lease_ttl <= 0 or lm.heartbeat_interval <= 0:
            return
        interval = lm.heartbeat_interval
        if duration <= interval:
            return  # the window ends (and releases) before a beat is due
        owner = self._window_owner(record)
        if not lm.locks_of(owner):
            return  # this window holds no leases
        deadline = self.kernel.now + duration

        def beat() -> None:
            if not record.valid or not record.instance.node.alive:
                return  # dead window / dead node: the lease must lapse
            if lm.renew_owner(owner):
                self.counters.incr("lease.renewed")
            if self.kernel.now + interval < deadline:
                self.kernel.schedule(interval, beat)

        self.kernel.schedule(interval, beat)

    def break_window_for(self, key: str, owner: str, reason: str) -> bool:
        """The lock manager's ``lease_breaker``: a lease on ``key`` held
        by ``owner`` is being expired or stolen — abort that owner's
        in-flight window *now*, so its rollback lands before the new
        owner reads any state.  Returns True when a window was broken.
        """
        for record in list(self._in_flight):
            if record.valid and self._window_owner(record) == owner:
                self.counters.incr("lease.window-broken")
                self.trace.record(self.kernel.now, "lease-broken",
                                  key=key, owner=owner, reason=reason,
                                  msg=record.message.id)
                self._abort_window(record,
                                   f"lease on {key} broken: {reason}")
                return True
        return False

    def _complete(self, record: _InFlight, envelope: ResponseEnvelope,
                  duration: float) -> None:
        if not record.valid:
            return  # the node died while processing; message was requeued
        if self.lock_manager is not None and record.context is not None:
            # fencing: a window whose lock grant was superseded while it
            # ran (lease expired, lock stolen by a new owner) must not
            # commit — its effects roll back and the message retries.
            # Normally the lease breaker already aborted such windows
            # synchronously at steal time; this is the last line of
            # defense for expiries that bypassed it.
            fence = getattr(record.context, "fence", None)
            if fence is not None \
                    and not self.lock_manager.fence_valid(*fence):
                self.lock_manager.fence_rejections += 1
                self.counters.incr("lease.fence-rejected")
                self._abort_window(record, "fencing token superseded")
                return
        if self.durable_store is not None and record.batch is not None:
            # the group commit: one journal append for the whole
            # window.  A torn-commit fault aborts the window — state
            # rolls back via the undo hooks, the partial record is
            # dropped by the next replay, and the message retries.
            batch, record.batch = record.batch, None
            try:
                self.durable_store.commit_batch(batch)
            except StoreError as err:
                self._abort_window(record, f"journal fault: {err}")
                return
        self._in_flight.remove(record)
        node = record.instance.node
        node.busy -= 1
        node.processed += 1
        node.busy_time += duration
        record.instance.processed += 1
        self.counters.incr(f"op.{record.message.service}.{record.message.operation}")
        self.counters.add("busy_time", duration)
        if self.metrics.enabled:
            # the spawn governor's operation-latency signal
            self.metrics.histogram("op.duration").observe(duration)
        message = record.message
        if record.context is not None:
            for hook in record.context.completion_hooks:
                hook()
        from .services import Deferred, Requeue

        if record.context is not None and \
                not isinstance(envelope.value, Requeue):
            # transactional sends: the operation's outgoing messages hit
            # the queue now, at the end of its simulated window
            record.context.flush_outbox()
        if isinstance(envelope.value, Requeue):
            # the handler backed off (e.g. AwakeFiber lock patience):
            # the message goes back on the queue, keeping its reply_to
            self.trace.record(self.kernel.now, "requeue",
                              service=message.service,
                              operation=message.operation, msg=message.id,
                              node=node.id)
            if record.span_id:
                self.tracer.end(record.span_id, end=self.kernel.now,
                                requeued=True)
            delay = envelope.value.delay
            if self.queue.requeue(message, self.kernel.now):
                self.kernel.schedule(max(delay, 0.0),
                                     lambda s=message.service: self._kick(s))
            else:
                self._on_dead_letter(message, "voluntary requeues exhausted")
            self._kick_node(node)
            return
        self.trace.record(self.kernel.now, "complete", service=message.service,
                          operation=message.operation, msg=message.id,
                          node=node.id, ok=envelope.ok)
        if record.span_id:
            self.tracer.end(record.span_id, end=self.kernel.now,
                            ok=envelope.ok)
        if isinstance(envelope.value, Deferred):
            pass  # reply postponed; the Deferred resolves it later
        elif message.reply_to is not None:
            self._route_reply(message.reply_to, envelope,
                              parent_span=record.span_id)
        # the freed slot may unblock any service on this node
        self._kick_node(node)

    def _route_reply(self, reply_to: ReplyTo, envelope: ResponseEnvelope,
                     parent_span: int = 0) -> None:
        body = envelope.to_body()
        if reply_to.callback is not None:
            callback = reply_to.callback
            self.kernel.schedule(self.delivery_latency,
                                 lambda: callback(body))
            return
        merged = dict(reply_to.extra)
        merged["response"] = body
        self.send(reply_to.service, reply_to.operation, merged,
                  max_attempts=1_000_000, affinity=reply_to.affinity,
                  parent_span=parent_span)

    # ------------------------------------------------------------------
    # retry / dead-letter machinery
    # ------------------------------------------------------------------

    def _abort_window(self, record: "_InFlight", reason: str) -> None:
        """An operation failed mid-window (store fault): run its abort
        hooks (state rollback, lock release), free the slot, and retry
        the message per its policy — the same recovery path a node
        death takes, but for a single failed operation."""
        record.valid = False
        if record in self._in_flight:
            self._in_flight.remove(record)
        node = record.instance.node
        node.busy -= 1
        if self.durable_store is not None and record.batch is not None:
            # sealed but never committed (fence rejection, lease steal
            # mid-window): the batch must not reach the journal
            self.durable_store.discard_batch(record.batch)
            record.batch = None
        if record.context is not None:
            for hook in record.context.abort_hooks:
                hook()
        if record.span_id:
            self.tracer.end(record.span_id, end=self.kernel.now,
                            aborted=True, error=reason)
        self.trace.record(self.kernel.now, OPERATION_FAULT,
                          service=record.message.service,
                          operation=record.message.operation,
                          msg=record.message.id, node=node.id,
                          reason=reason)
        self.counters.incr("operation.faults")
        self._retry_or_dead_letter(record.message, reason)
        self._kick_node(node)

    def _retry_or_dead_letter(self, message: Message, reason: str) -> bool:
        """Consume one delivery attempt; either schedule a backoff
        retry or move the message to the dead-letter queue.  Returns
        True when a retry was scheduled."""
        policy = message.retry_policy or self.retry_policy
        now = self.kernel.now
        if policy.expired(message.first_enqueued_at, now):
            message.attempts += 1
            self.queue.dead_letter(message)
            self._on_dead_letter(message, f"{reason}; retry timeout expired")
            return False
        cap = policy.max_attempts if policy.max_attempts is not None \
            else message.max_attempts
        if not self.queue.requeue(message, now, cap=cap, push=False):
            self._on_dead_letter(message, f"{reason}; attempts exhausted")
            return False
        delay = policy.backoff_delay(message.attempts, self.rng)
        self.trace.record(now, RETRY_SCHEDULED, msg=message.id,
                          service=message.service,
                          operation=message.operation,
                          attempt=message.attempts, delay=delay,
                          reason=reason)
        self.counters.incr("retry.scheduled")
        self.kernel.schedule(
            delay, lambda m=message: (self.queue.push_back(m),
                                      self._kick(m.service)))
        return True

    def _on_dead_letter(self, message: Message, reason: str) -> None:
        """Observability + liveness when a message dead-letters: trace
        it, answer any waiting requester with a fault (so synchronous
        callers and suspended fibers get a signalable condition instead
        of hanging), and tell the listeners (Vinz fails the owning
        fiber/task through the normal error path)."""
        self.trace.record(self.kernel.now, DEADLETTER_ENQUEUED,
                          msg=message.id, service=message.service,
                          operation=message.operation,
                          attempts=message.attempts, reason=reason)
        self.counters.incr("deadletter.enqueued")
        if message.reply_to is not None:
            self._route_reply(message.reply_to, ResponseEnvelope(
                fault_qname="{urn:bluebox}DeadLettered",
                fault_message=f"{message.service}.{message.operation} "
                              f"dead-lettered: {reason}"),
                parent_span=message.origin_span_id)
        for listener in self.dead_letter_listeners:
            listener(message)

    # ------------------------------------------------------------------
    # failure injection (survivability, paper Section 3.2)
    # ------------------------------------------------------------------

    def fail_node(self, node_id: str) -> int:
        """Kill a node.  In-flight messages are re-queued for delivery
        elsewhere; per-node memory (caches) is lost.  Returns how many
        requests were re-queued."""
        node = self.nodes[node_id]
        node.alive = False
        node.memory.clear()
        requeued = 0
        for record in list(self._in_flight):
            if record.instance.node is node:
                record.valid = False
                self._in_flight.remove(record)
                node.busy -= 1
                if self.durable_store is not None \
                        and record.batch is not None:
                    # sealed but never committed: the batch dies with
                    # the node and replay excludes it by construction
                    self.durable_store.discard_batch(record.batch)
                    record.batch = None
                if record.context is not None:
                    # a *dirty* crash: abort hooks that model work the
                    # dead JVM could never do (releasing an NFS lock
                    # file) check this flag and abandon instead
                    record.context.node_failed = True
                    for hook in record.context.abort_hooks:
                        hook()
                message = record.message
                self.trace.record(self.kernel.now, "instance-failure",
                                  node=node.id, msg=message.id,
                                  operation=message.operation)
                if record.span_id:
                    self.tracer.end(record.span_id, end=self.kernel.now,
                                    aborted=True, error="node-failure")
                if self.queue.requeue(message, self.kernel.now):
                    requeued += 1
                    service = message.service
                    self.kernel.schedule(self.redelivery_delay,
                                         lambda s=service: self._kick(s))
                else:
                    self._on_dead_letter(
                        message, f"redelivery after {node.id} failure "
                                 f"exhausted attempts")
        return requeued

    def restore_node(self, node_id: str) -> None:
        node = self.nodes[node_id]
        node.alive = True
        self._kick_all()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def alive_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.alive]

    def total_slots(self) -> int:
        return sum(n.slots for n in self.alive_nodes())

    def utilization(self) -> float:
        """Mean busy fraction across alive nodes since t=0."""
        now = self.kernel.now
        if now <= 0:
            return 0.0
        capacity = sum(n.slots for n in self.nodes.values()) * now
        busy = sum(n.busy_time for n in self.nodes.values())
        return busy / capacity if capacity else 0.0
