"""Pluggable message-scheduling policies for the BlueBox queue.

The seed queue is one strict priority heap per service: under a
sustained flood of high-priority messages a ``PRIORITY_NORMAL`` message
is *never* delivered — the starvation the paper's Section 5 burstiness
discussion worries about.  This module defines the policy interface the
:class:`~repro.bluebox.messagequeue.MessageQueue` delegates its storage
to, plus two implementations:

* :class:`StrictPriorityPolicy` — the seed behaviour, bit-for-bit
  (priority, then FIFO by arrival sequence).  The default.
* :class:`DeficitRoundRobinPolicy` — fair scheduling: messages are
  partitioned into *flows* (one per workflow task id), each flow is
  FIFO, and delivery rotates deficit-round-robin across the flows
  whose head currently occupies the best *effective*-priority band.
  Effective priority decays linearly with queue age (priority aging),
  so a normal-priority flow climbs into the interactive band after
  ``(prio_normal - prio_interactive) / aging_rate`` virtual seconds —
  a hard bound on starvation no matter how hot the high-priority
  firehose runs.

Policies are pure data structures over ``(message, seq, now)``; they
import nothing from ``bluebox`` so the dependency arrow stays
``bluebox -> sched``.  Selection (``peek``) is a pure function of the
stored state and ``now`` — ``peek``/``peek_priority``/``pop`` at the
same instant always agree on the same message, which the cluster's
peek-then-pop dispatch loop relies on.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

#: flow key for messages that carry no workflow identity (management
#: traffic, external sends): they share one control flow
CONTROL_FLOW = "<control>"


def default_flow_of(message: Any) -> str:
    """Partition messages into flows by workflow: task id when the
    body carries one, else fiber id (fiber-lifecycle traffic like
    AwakeFiber names only the fiber), else the shared control flow."""
    body = getattr(message, "body", None) or {}
    key = body.get("task") or body.get("fiber")
    return key if key is not None else CONTROL_FLOW


class SchedulingPolicy:
    """What the MessageQueue needs from a scheduling policy.

    One policy instance serves every service; ``service`` namespaces
    all calls.  ``seq`` is the queue's global arrival counter (FIFO
    tie-break); ``now`` is the virtual clock at the call.
    """

    name = "policy"

    def push(self, service: str, message: Any, seq: int, now: float) -> None:
        raise NotImplementedError

    def pop(self, service: str, now: float) -> Optional[Any]:
        raise NotImplementedError

    def peek(self, service: str, now: float) -> Optional[Any]:
        raise NotImplementedError

    def peek_priority(self, service: str,
                      now: float) -> Optional[Tuple[float, int]]:
        """A cross-service-comparable (priority, seq) key for the
        message :meth:`pop` would deliver next — the cluster's
        free-slot loop uses it to serve services in global order."""
        raise NotImplementedError

    def depth(self, service: str) -> int:
        raise NotImplementedError

    def total_depth(self) -> int:
        raise NotImplementedError

    def services(self) -> List[str]:
        """Services with at least one queued message."""
        raise NotImplementedError


class StrictPriorityPolicy(SchedulingPolicy):
    """The seed scheduler: one heap per service, (priority, seq) order.

    Within a priority messages are FIFO; across priorities lower always
    wins — which is exactly why it can starve (see the starvation
    property test, which this policy is *expected* to fail)."""

    name = "strict"

    def __init__(self):
        self._heaps: Dict[str, List[Tuple[int, int, Any]]] = {}

    def push(self, service: str, message: Any, seq: int, now: float) -> None:
        heap = self._heaps.setdefault(service, [])
        heapq.heappush(heap, (message.priority, seq, message))

    def pop(self, service: str, now: float) -> Optional[Any]:
        heap = self._heaps.get(service)
        if not heap:
            return None
        _prio, _seq, message = heapq.heappop(heap)
        return message

    def peek(self, service: str, now: float) -> Optional[Any]:
        heap = self._heaps.get(service)
        if not heap:
            return None
        return heap[0][2]

    def peek_priority(self, service: str,
                      now: float) -> Optional[Tuple[float, int]]:
        heap = self._heaps.get(service)
        if not heap:
            return None
        priority, seq, _message = heap[0]
        return (priority, seq)

    def depth(self, service: str) -> int:
        return len(self._heaps.get(service, []))

    def total_depth(self) -> int:
        return sum(len(h) for h in self._heaps.values())

    def services(self) -> List[str]:
        return [s for s, h in self._heaps.items() if h]


class _ServiceFlows:
    """Per-service DRR state: FIFO flow deques plus rotation cursors."""

    __slots__ = ("flows", "order", "deficit", "current", "last")

    def __init__(self):
        #: flow key -> deque of (seq, message); head = oldest
        self.flows: Dict[str, deque] = {}
        #: active flow keys in arrival order (the rotation ring)
        self.order: List[str] = []
        #: carried-over serving credit per flow
        self.deficit: Dict[str, float] = {}
        #: flow still spending its quantum (keeps serving while
        #: deficit covers the cost), and the last flow served
        self.current: Optional[str] = None
        self.last: Optional[str] = None


class DeficitRoundRobinPolicy(SchedulingPolicy):
    """Deficit round-robin across workflow flows, with priority aging.

    Selection, for one service at instant ``now``:

    1. every non-empty flow is ranked by its *head* message's effective
       priority ``max(0, priority - aging_rate * age)``;
    2. the flows whose head falls in the best (lowest) integer band are
       *eligible* — aging is what lets a patient normal-priority flow
       join the interactive band;
    3. among eligible flows, deficit round-robin: each flow's turn
       grants it ``quantum`` credit and it serves messages (cost 1
       each) until the credit runs dry, then the turn rotates.

    Within a flow, order is strictly FIFO regardless of per-message
    priorities — per-workflow FIFO is the invariant the property tests
    pin down.  ``aging_rate`` is priority units per virtual second; the
    default 1.0 promotes NORMAL (5) into the INTERACTIVE band (2) after
    3 seconds of waiting, so no message waits unboundedly.
    """

    name = "fair"

    def __init__(self, aging_rate: float = 1.0, quantum: float = 1.0,
                 flow_of: Callable[[Any], str] = default_flow_of):
        if aging_rate < 0:
            raise ValueError("aging_rate must be >= 0")
        if quantum < 1.0:
            raise ValueError("quantum must be >= 1 (the unit message cost)")
        self.aging_rate = aging_rate
        self.quantum = quantum
        self.cost = 1.0
        self.flow_of = flow_of
        self._services: Dict[str, _ServiceFlows] = {}
        #: messages served from a band better than their static
        #: priority — i.e. deliveries that only aging made possible
        self.aged_promotions = 0

    # -- effective priority -------------------------------------------------

    def _effective(self, entry: Tuple[int, Any], now: float) -> float:
        _seq, message = entry
        age = max(0.0, now - message.enqueued_at)
        return max(0.0, message.priority - self.aging_rate * age)

    def _band(self, entry: Tuple[int, Any], now: float) -> int:
        return int(math.floor(self._effective(entry, now)))

    # -- pure selection ------------------------------------------------------

    def _choose(self, state: _ServiceFlows, now: float) -> Optional[str]:
        """The flow :meth:`pop` would serve next.  Pure: no state is
        mutated, so peek and pop agree at the same instant."""
        if not state.order:
            return None
        band = min(self._band(state.flows[k][0], now) for k in state.order)
        eligible = {k for k in state.order
                    if self._band(state.flows[k][0], now) == band}
        current = state.current
        if current in eligible and \
                state.deficit.get(current, 0.0) >= self.cost:
            return current  # still spending its quantum
        # rotate: the first eligible flow after the last one served
        ring = state.order
        if state.last in ring:
            i = ring.index(state.last)
            ring = ring[i + 1:] + ring[:i + 1]
        for key in ring:
            if key in eligible:
                return key
        return None  # pragma: no cover - eligible is never empty here

    # -- SchedulingPolicy ----------------------------------------------------

    def push(self, service: str, message: Any, seq: int, now: float) -> None:
        state = self._services.setdefault(service, _ServiceFlows())
        key = self.flow_of(message)
        flow = state.flows.get(key)
        if flow is None:
            flow = state.flows[key] = deque()
            state.order.append(key)
        flow.append((seq, message))

    def pop(self, service: str, now: float) -> Optional[Any]:
        state = self._services.get(service)
        if state is None:
            return None
        key = self._choose(state, now)
        if key is None:
            return None
        flow = state.flows[key]
        head_band = self._band(flow[0], now)
        _seq, message = flow.popleft()
        if head_band < message.priority:
            # served out of a better band than its static priority:
            # the delivery priority aging earned it
            self.aged_promotions += 1
        # deficit accounting: a fresh turn grants the quantum; the flow
        # keeps the floor while its credit covers another message
        if key == state.current:
            state.deficit[key] = state.deficit.get(key, 0.0) - self.cost
        else:
            state.current = key
            state.deficit[key] = \
                state.deficit.get(key, 0.0) + self.quantum - self.cost
        state.last = key
        if state.deficit.get(key, 0.0) < self.cost:
            state.current = None  # quantum spent: next pop rotates
        if not flow:
            del state.flows[key]
            state.order.remove(key)
            state.deficit.pop(key, None)
            if state.current == key:
                state.current = None
        return message

    def peek(self, service: str, now: float) -> Optional[Any]:
        state = self._services.get(service)
        if state is None:
            return None
        key = self._choose(state, now)
        if key is None:
            return None
        return state.flows[key][0][1]

    def peek_priority(self, service: str,
                      now: float) -> Optional[Tuple[float, int]]:
        state = self._services.get(service)
        if state is None:
            return None
        key = self._choose(state, now)
        if key is None:
            return None
        seq, _message = state.flows[key][0]
        return (self._effective(state.flows[key][0], now), seq)

    def depth(self, service: str) -> int:
        state = self._services.get(service)
        if state is None:
            return 0
        return sum(len(f) for f in state.flows.values())

    def total_depth(self) -> int:
        return sum(self.depth(s) for s in self._services)

    def services(self) -> List[str]:
        return [s for s, state in self._services.items() if state.order]


def make_policy(spec: Any) -> SchedulingPolicy:
    """Resolve a policy spec: None/"strict" -> the seed heap,
    "fair" -> deficit round-robin with defaults, or an instance."""
    if spec is None or spec == "strict":
        return StrictPriorityPolicy()
    if spec == "fair":
        return DeficitRoundRobinPolicy()
    if isinstance(spec, SchedulingPolicy):
        return spec
    raise ValueError(f"unknown scheduling policy {spec!r}")
