"""Admission control with backpressure for the BlueBox cluster.

The seed cluster accepts every ``send`` unconditionally: under overload
the queue grows without bound, every message's wait inflates, and the
caller learns nothing until its retry policy times out.  This module
adds per-service watermarks checked at the cluster's front door:

* below ``delay_watermark`` backlog per service slot — **accept**;
* between the watermarks — **delay**: the message is held off the
  queue for a backoff computed by a :class:`~repro.faults.retry.
  RetryPolicy` from the overload ratio, smearing bursts instead of
  stacking them;
* above ``shed_watermark`` — **shed**: the request is answered
  immediately with a retryable ``{urn:bluebox}ServerBusy`` fault.
  Through the deflink response path that fault surfaces in Gozer as a
  ``service-error`` condition carrying the QName, so a
  ``(defhandler ... :code ("{urn:bluebox}ServerBusy") :action retry)``
  — or any caller-side RetryPolicy — turns overload into a clean
  retry loop instead of a timeout.

Backlog counts queued plus in-flight work, normalised by the service's
alive slots, so watermarks mean the same thing on any cluster size.

Fiber-lifecycle operations (RunFiber, AwakeFiber, ResumeFromCall,
JoinProcess, DeliverMessage) and management traffic are exempt:
admission governs work *entering* the platform, never the internal
messages that let already-admitted work finish — shedding those would
trade overload for deadlock.  Requests without a ``reply_to`` are
never shed (there is nobody to tell), only delayed.

Every decision is visible: ``sched.admission.delayed`` / ``.shed``
counters, a ``sched.backlog.<service>`` gauge, and ``sched``-kind
spans for shed/delay events in the Chrome trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional, Tuple

from ..faults.retry import RetryPolicy

ACCEPT = "accept"
DELAY = "delay"
SHED = "shed"

#: the retryable overload fault (same namespace as DeadLettered)
SERVER_BUSY_QNAME = "{urn:bluebox}ServerBusy"

#: operations admission never impedes: internal fiber-lifecycle
#: progress and management traffic
EXEMPT_OPERATIONS: FrozenSet[str] = frozenset({
    "RunFiber", "AwakeFiber", "ResumeFromCall", "JoinProcess",
    "DeliverMessage", "Terminate",
})


def _default_delay_policy() -> RetryPolicy:
    # deterministic (jitter-free) backoff: the delay depends only on
    # how far past the watermark the service is
    return RetryPolicy(max_attempts=None, base_delay=0.02, multiplier=2.0,
                       max_delay=1.0, jitter=0.0)


@dataclass
class AdmissionConfig:
    """Watermarks and backoff for :class:`AdmissionController`."""

    #: backlog (queued + in-flight) per alive service slot at which
    #: new requests start being delayed / shed
    delay_watermark: float = 4.0
    shed_watermark: float = 12.0
    #: computes the hold-off for DELAY verdicts; "attempt" is the
    #: overload multiple (backlog / delay watermark), so deeper
    #: overload backs off exponentially harder
    delay_policy: RetryPolicy = field(default_factory=_default_delay_policy)
    #: operations that are always accepted
    exempt_operations: FrozenSet[str] = EXEMPT_OPERATIONS
    #: restrict admission to these services (None = govern every
    #: service).  Typical deployments guard the hot backend services
    #: and leave workflow-control traffic ungoverned.
    services: Optional[FrozenSet[str]] = None


class AdmissionController:
    """Pure watermark policy plus decision counters.

    The cluster supplies the load figures (it owns the queue and the
    in-flight table) and acts on the verdict; the controller decides
    and counts.  Stateless across messages, so it replays exactly.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self.accepted = 0
        self.delayed = 0
        self.shed = 0

    def decide(self, service: str, operation: str, backlog: int,
               slots: int, sheddable: bool) -> Tuple[str, float]:
        """(verdict, delay_seconds) for one incoming request."""
        cfg = self.config
        if cfg.services is not None and service not in cfg.services:
            self.accepted += 1
            return (ACCEPT, 0.0)
        if operation in cfg.exempt_operations:
            self.accepted += 1
            return (ACCEPT, 0.0)
        per_slot = backlog / max(1, slots)
        if per_slot < cfg.delay_watermark:
            self.accepted += 1
            return (ACCEPT, 0.0)
        if per_slot >= cfg.shed_watermark and sheddable:
            self.shed += 1
            return (SHED, 0.0)
        overload = int(per_slot / cfg.delay_watermark)
        delay = cfg.delay_policy.backoff_delay(max(1, overload), rng=None)
        self.delayed += 1
        return (DELAY, delay)

    def summary(self) -> dict:
        return {"accepted": self.accepted, "delayed": self.delayed,
                "shed": self.shed}


def make_admission(spec: Any) -> Optional[AdmissionController]:
    """Resolve an admission spec: None -> off, True -> defaults, an
    AdmissionConfig -> controller over it, or a ready controller."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return AdmissionController()
    if isinstance(spec, AdmissionConfig):
        return AdmissionController(spec)
    if isinstance(spec, AdmissionController):
        return spec
    raise ValueError(f"unknown admission spec {spec!r}")
