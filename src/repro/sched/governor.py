"""The AIMD spawn governor: feedback control for the spawn limit.

The paper throttles ``for-each``/``parallel`` fan-out with a *static*
spawn limit the programmer must guess (Section 3.5, Listing 3).  Too
low under-drives the cluster; too high floods the queue, inflates
``queue.wait`` and — under the Section 5 burst pathology — starves
unrelated traffic.  The governor replaces the guess with TCP-style
additive-increase / multiplicative-decrease driven by live signals:

* **queue pressure** — total backlog per alive slot, and the mean
  ``queue.wait`` over the last control interval (streamed by the
  queue, so the signal works with metrics off);
* **operation latency** — the mean operation duration over the last
  interval against a slow EWMA baseline; a sustained rise (an injected
  slow-down, a hot store) reads as congestion even before the queue
  visibly backs up.

While both are calm the limit creeps up by ``increase`` per interval;
any congestion signal halves it (``decrease``).  Workflows opt in per
task with ``(vinz-auto-spawn-limit)`` or per deployment with
``spawn_limit="auto"``; the paper's Listing 3 throttle loop re-reads
the limit every iteration, so a running fan-out follows the governor
mid-flight — no new mechanism needed in the loop itself.

The governor is *pulled*, not timer-driven: every spawn-limit read
calls :meth:`current_limit`, which re-evaluates at most once per
``interval`` of virtual time.  That keeps the control loop strictly
deterministic (it runs at the same virtual instants for the same
workload and seed) and costs nothing while no fan-out is running.

Decisions are observable: a ``sched.spawn_limit`` gauge,
``sched.governor.increase``/``decrease`` counters, and a ``sched``-kind
span per adjustment in the causal trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

#: sentinel accepted wherever a spawn limit is configured: resolve the
#: limit through the environment's governor at each read
AUTO_SPAWN_LIMIT = "auto"


@dataclass
class GovernorConfig:
    """Tuning knobs for the AIMD controller (see docs/scheduler.md)."""

    #: limit bounds and starting point
    initial: int = 4
    min_limit: int = 1
    max_limit: int = 64
    #: additive step per calm interval / multiplicative cut on congestion
    increase: int = 2
    decrease: float = 0.5
    #: virtual seconds between control decisions
    interval: float = 0.5
    #: backlog per alive slot: above ``depth_high`` is congestion,
    #: below ``depth_low`` is headroom
    depth_high: float = 3.0
    depth_low: float = 1.5
    #: interval-mean queue wait (virtual seconds): congestion / headroom
    wait_high: float = 0.5
    wait_low: float = 0.1
    #: interval-mean op duration vs. the EWMA baseline: a ratio above
    #: ``latency_factor`` (e.g. an injected node slow-down) is congestion
    latency_factor: float = 2.5
    #: smoothing for the op-duration baseline
    latency_alpha: float = 0.3


class SpawnGovernor:
    """One AIMD controller per :class:`~repro.vinz.api.VinzEnvironment`.

    Reads its signals straight off the owning cluster (queue depth and
    streaming wait counters) and its metrics registry (operation
    durations); writes its decisions back as ``sched.*`` metrics and
    spans.  All state is derived from the virtual clock, so a campaign
    replays bit-identically.
    """

    def __init__(self, cluster, config: Optional[GovernorConfig] = None):
        self.cluster = cluster
        self.config = config or GovernorConfig()
        self.limit = self.config.initial
        self._last_decision = cluster.kernel.now
        # interval snapshots of the cumulative signal counters
        self._wait_count, self._wait_total = self._wait_totals()
        self._op_count, self._op_total = self._op_totals()
        self._latency_baseline: Optional[float] = None
        # bookkeeping for tests / reports
        self.increases = 0
        self.decreases = 0
        self.decisions = 0
        #: (virtual time, limit) after every change — the convergence
        #: trace the chaos campaign asserts over
        self.history: List[Tuple[float, int]] = [(self._last_decision,
                                                  self.limit)]
        self._publish_gauge()

    # -- signal taps ---------------------------------------------------------

    def _wait_totals(self) -> Tuple[int, float]:
        queue = self.cluster.queue
        return queue.wait_count(), queue.wait_sum()

    def _op_totals(self) -> Tuple[int, float]:
        counters = self.cluster.counters
        processed = sum(n.processed for n in self.cluster.nodes.values())
        return processed, counters.get_sum("busy_time")

    # -- the control loop ----------------------------------------------------

    def current_limit(self, now: Optional[float] = None) -> int:
        """The governed spawn limit, re-evaluated at most once per
        control interval.  This is what ``(vinz-auto-spawn-limit)``
        tasks read on every Listing-3 loop iteration."""
        if now is None:
            now = self.cluster.kernel.now
        if now - self._last_decision >= self.config.interval:
            self._decide(now)
        return self.limit

    def _decide(self, now: float) -> None:
        cfg = self.config
        self._last_decision = now
        self.decisions += 1

        slots = max(1, self.cluster.total_slots())
        depth_per_slot = self.cluster.queue.total_depth() / slots

        wait_count, wait_total = self._wait_totals()
        delivered = wait_count - self._wait_count
        interval_wait = ((wait_total - self._wait_total) / delivered
                         if delivered > 0 else 0.0)
        self._wait_count, self._wait_total = wait_count, wait_total

        op_count, op_total = self._op_totals()
        completed = op_count - self._op_count
        interval_latency = ((op_total - self._op_total) / completed
                            if completed > 0 else None)
        self._op_count, self._op_total = op_count, op_total

        latency_inflated = False
        if interval_latency is not None:
            if self._latency_baseline is None:
                self._latency_baseline = interval_latency
            else:
                latency_inflated = (interval_latency >
                                    cfg.latency_factor *
                                    self._latency_baseline)
                alpha = cfg.latency_alpha
                self._latency_baseline = (alpha * interval_latency +
                                          (1 - alpha) *
                                          self._latency_baseline)

        congested = (depth_per_slot >= cfg.depth_high
                     or interval_wait >= cfg.wait_high
                     or latency_inflated)
        headroom = (depth_per_slot <= cfg.depth_low
                    and interval_wait <= cfg.wait_low
                    and not latency_inflated)

        if congested:
            new_limit = max(cfg.min_limit, int(self.limit * cfg.decrease))
            reason = "congested"
        elif headroom:
            new_limit = min(cfg.max_limit, self.limit + cfg.increase)
            reason = "headroom"
        else:
            return  # hold
        if new_limit == self.limit:
            return
        old, self.limit = self.limit, new_limit
        if new_limit > old:
            self.increases += 1
        else:
            self.decreases += 1
        self.history.append((now, new_limit))
        self._record(now, old, new_limit, reason,
                     depth_per_slot=depth_per_slot,
                     interval_wait=interval_wait,
                     interval_latency=interval_latency)

    # -- observability -------------------------------------------------------

    def _publish_gauge(self) -> None:
        metrics = self.cluster.metrics
        if metrics is not None and metrics.enabled:
            metrics.gauge("sched.spawn_limit").set(self.limit)

    def _record(self, now: float, old: int, new: int, reason: str,
                **signals: Any) -> None:
        self._publish_gauge()
        metrics = self.cluster.metrics
        if metrics is not None and metrics.enabled:
            direction = "increase" if new > old else "decrease"
            metrics.counter(f"sched.governor.{direction}").inc()
        tracer = self.cluster.tracer
        if tracer is not None and tracer.enabled:
            span = tracer.begin(
                f"sched:governor:{reason}", kind="sched", start=now,
                old_limit=old, new_limit=new,
                **{k: round(v, 6) for k, v in signals.items()
                   if v is not None})
            tracer.end(span, end=now)

    def summary(self) -> dict:
        return {
            "limit": self.limit,
            "decisions": self.decisions,
            "increases": self.increases,
            "decreases": self.decreases,
            "min_seen": min(l for _, l in self.history),
            "max_seen": max(l for _, l in self.history),
        }
