"""Adaptive scheduling & admission control (the ``repro.sched`` layer).

The paper's production system throttles ``for-each``/``parallel``
fan-out with a *static* spawn limit (Section 3.5) and load-balances via
a strict-priority queue (Section 5) — under sustained load that either
under-drives or overloads the cluster, and a flood of high-priority
messages can starve normal traffic indefinitely.  This package replaces
both mechanisms with feedback-driven ones:

* :mod:`repro.sched.governor` — an AIMD **spawn governor** that tunes
  the effective spawn limit from live queue-depth and latency signals
  (additive increase while the cluster has headroom, multiplicative
  decrease when queues back up), exposed to Gozer code as
  ``(vinz-auto-spawn-limit)`` alongside the paper's static
  ``set-spawn-limit``;
* :mod:`repro.sched.fair` — a **fair scheduler** for the message
  queue: deficit round-robin across workflows (task ids) with priority
  aging, so sustained high-priority storms cannot starve
  ``PRIORITY_NORMAL`` traffic.  Pluggable behind the existing
  ``MessageQueue.pop_next``/``peek_priority`` API, so the cluster's
  dispatch loop is unchanged;
* :mod:`repro.sched.admission` — **admission control with
  backpressure**: per-service depth/in-flight watermarks that delay or
  shed incoming requests, answering shed requests with a retryable
  ``{urn:bluebox}ServerBusy`` fault that surfaces through the Gozer
  condition system (and is retried by handlers / RetryPolicies).

Every decision is observable: ``sched.*`` counters and gauges in the
metrics registry, plus ``sched``-kind spans in the causal trace.
See ``docs/scheduler.md``.
"""

from .fair import (
    DeficitRoundRobinPolicy,
    SchedulingPolicy,
    StrictPriorityPolicy,
    make_policy,
)
from .governor import AUTO_SPAWN_LIMIT, GovernorConfig, SpawnGovernor
from .admission import (
    ACCEPT,
    AdmissionConfig,
    AdmissionController,
    DELAY,
    SERVER_BUSY_QNAME,
    SHED,
    make_admission,
)

__all__ = [
    "ACCEPT", "DELAY", "SHED", "SERVER_BUSY_QNAME",
    "AdmissionConfig", "AdmissionController",
    "DeficitRoundRobinPolicy", "SchedulingPolicy", "StrictPriorityPolicy",
    "make_policy", "make_admission",
    "AUTO_SPAWN_LIMIT", "GovernorConfig", "SpawnGovernor",
]
