"""repro — a reproduction of "The Gozer Workflow System" (IPPS 2010).

The package mirrors the paper's architecture:

* :mod:`repro.lang` — the Gozer language front end (reader, macros,
  compiler, standard library);
* :mod:`repro.gvm` — the Gozer Virtual Machine: bytecode interpreter
  with serializable continuations, futures, and the condition system;
* :mod:`repro.bluebox` — a simulation of the proprietary BlueBox
  platform: message queue, cluster, services, WSDL, shared store,
  distributed locks;
* :mod:`repro.vinz` — the Vinz distribution module: tasks, fibers,
  workflow services, ``for-each``/``parallel``, task variables,
  ``deflink``, named handlers, persistence;
* :mod:`repro.workloads` — synthetic workload generators calibrated to
  the paper's production statistics.

Quickstart::

    from repro import make_runtime

    rt = make_runtime()
    rt.eval_string("(defun square (x) (* x x))")
    assert rt.eval_string("(square 7)") == 49
"""

from .gvm.runtime import Runtime, make_runtime
from .gvm.vm import VM, Done, Yielded
from .gvm.continuations import Continuation
from .gvm.futures import (
    GozerFuture,
    SynchronousFutureExecutor,
    ThreadPoolFutureExecutor,
)
from .lang.reader import read_all, read_string
from .lang.symbols import Keyword, Symbol

__all__ = [
    "Runtime",
    "make_runtime",
    "VM",
    "Done",
    "Yielded",
    "Continuation",
    "GozerFuture",
    "SynchronousFutureExecutor",
    "ThreadPoolFutureExecutor",
    "read_all",
    "read_string",
    "Keyword",
    "Symbol",
]

__version__ = "1.0.0"
