"""Benchmark reporting helpers.

Each benchmark regenerates one of the paper's tables/figures/claims and
prints rows in a uniform ``metric | paper | measured`` format, so that
EXPERIMENTS.md entries can be produced straight from bench output.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple


def format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def table(title: str, headers: Sequence[str],
          rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned text table."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", line(headers), sep]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def paper_vs_measured(title: str,
                      rows: Iterable[Tuple[str, Any, Any]]) -> str:
    """The canonical three-column report."""
    return table(title, ["metric", "paper", "measured"], rows)


def series(title: str, x_name: str, y_names: Sequence[str],
           points: Iterable[Sequence[Any]]) -> str:
    """A figure-style series table (one row per x)."""
    return table(title, [x_name, *y_names], points)


def ratio_check(name: str, measured: float, expected: float,
                tolerance: float = 0.5) -> str:
    """A one-line shape check: is measured within tolerance×expected?"""
    ok = expected * (1 - tolerance) <= measured <= expected * (1 + tolerance)
    flag = "OK" if ok else "OUT-OF-BAND"
    return (f"   {name}: measured={format_value(measured)} "
            f"expected≈{format_value(expected)} [{flag}]")
