"""Benchmark reporting helpers.

Each benchmark regenerates one of the paper's tables/figures/claims and
prints rows in a uniform ``metric | paper | measured`` format, so that
EXPERIMENTS.md entries can be produced straight from bench output.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple


def format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def table(title: str, headers: Sequence[str],
          rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned text table."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", line(headers), sep]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def paper_vs_measured(title: str,
                      rows: Iterable[Tuple[str, Any, Any]]) -> str:
    """The canonical three-column report."""
    return table(title, ["metric", "paper", "measured"], rows)


def series(title: str, x_name: str, y_names: Sequence[str],
           points: Iterable[Sequence[Any]]) -> str:
    """A figure-style series table (one row per x)."""
    return table(title, [x_name, *y_names], points)


def ratio_check(name: str, measured: float, expected: float,
                tolerance: float = 0.5) -> str:
    """A one-line shape check: is measured within tolerance×expected?"""
    ok = expected * (1 - tolerance) <= measured <= expected * (1 + tolerance)
    flag = "OK" if ok else "OUT-OF-BAND"
    return (f"   {name}: measured={format_value(measured)} "
            f"expected≈{format_value(expected)} [{flag}]")


def observability_tables(env) -> str:
    """The environment's observability report (repro.observe) rendered
    in the harness table format: histogram percentiles, span counts by
    kind, trace-log health and cache hit rates."""
    report = env.observability_report()
    blocks = []
    hists = report["metrics"]["histograms"]
    if hists:
        blocks.append(table(
            "Metrics (histograms)",
            ["name", "count", "mean", "p50", "p95", "p99", "max"],
            [(name, h["count"], h["mean"], h["p50"], h["p95"], h["p99"],
              h["max"]) for name, h in sorted(hists.items())]))
    spans = report["spans"]
    if spans["created"]:
        blocks.append(table(
            "Spans", ["kind", "count"],
            sorted(spans["by_kind"].items())))
    blocks.append(table(
        "Caches", ["cache", "hit rate"],
        sorted(report["cache_hit_rates"].items())))
    log = report["trace_log"]
    blocks.append(f"trace log: {log['events']} events, "
                  f"{log['dropped']} dropped "
                  f"(virtual time {format_value(report['virtual_time'])}s)")
    return "\n\n".join(blocks)


def write_json_report(env, path: str) -> str:
    """Publish the plain-JSON observability report; returns the path."""
    import json

    with open(path, "w") as fh:
        json.dump(env.observability_report(), fh, indent=1, default=repr)
    return path
