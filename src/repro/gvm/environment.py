"""Lexical and global environments for the GVM.

Environments must satisfy two requirements from the paper:

* they are ordinary heap objects (so they can be captured inside
  continuations and serialized with a fiber, Section 4.2), and
* a forked child fiber gets a *clone* of the parent's state, after which
  "changes either fiber makes will not be visible to its clone"
  (Section 3.4) — deep-copying an :class:`Env` chain is therefore a
  supported, ordinary operation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from ..lang.errors import UnboundVariableError
from ..lang.symbols import Symbol

_MISSING = object()


class Env:
    """A chain-linked lexical scope.

    Lookup walks the chain toward the root.  The root of a running
    fiber's chain is *not* the global environment — globals live in a
    separate :class:`GlobalEnvironment` so that fiber serialization does
    not drag the entire workflow definition along with every checkpoint.
    """

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["Env"] = None,
                 bindings: Optional[Dict[Symbol, Any]] = None):
        self.bindings: Dict[Symbol, Any] = bindings if bindings is not None else {}
        self.parent = parent

    def lookup(self, name: Symbol) -> Any:
        env: Optional[Env] = self
        while env is not None:
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        raise UnboundVariableError(name)

    def lookup_or(self, name: Symbol, default: Any = None) -> Any:
        env: Optional[Env] = self
        while env is not None:
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        return default

    def is_bound(self, name: Symbol) -> bool:
        env: Optional[Env] = self
        while env is not None:
            if name in env.bindings:
                return True
            env = env.parent
        return False

    def bind(self, name: Symbol, value: Any) -> None:
        """Create (or shadow) a binding in this innermost scope."""
        self.bindings[name] = value

    def assign(self, name: Symbol, value: Any) -> bool:
        """Assign to an *existing* binding; return False if none exists."""
        env: Optional[Env] = self
        while env is not None:
            if name in env.bindings:
                env.bindings[name] = value
                return True
            env = env.parent
        return False

    def child(self) -> "Env":
        return Env(parent=self)

    def chain(self) -> Iterator["Env"]:
        env: Optional[Env] = self
        while env is not None:
            yield env
            env = env.parent

    def __repr__(self) -> str:
        names = [s.name for s in self.bindings]
        return f"<Env {names}{' + parent' if self.parent else ''}>"


class DynamicBindings:
    """A stack of dynamic (special variable) bindings.

    Gozer inherits Common Lisp's special variables (``defvar`` creates
    one; conventionally ``*earmuffed*``).  Dynamic bindings are
    per-flow-of-control: each fiber (and each future's background
    thread) carries its own stack.
    """

    __slots__ = ("_stacks",)

    def __init__(self):
        self._stacks: Dict[Symbol, list] = {}

    def push(self, name: Symbol, value: Any) -> None:
        self._stacks.setdefault(name, []).append(value)

    def pop(self, name: Symbol) -> None:
        stack = self._stacks.get(name)
        if stack:
            stack.pop()
            if not stack:
                del self._stacks[name]

    def get(self, name: Symbol) -> Any:
        stack = self._stacks.get(name)
        if stack:
            return stack[-1]
        return _MISSING

    def set(self, name: Symbol, value: Any) -> bool:
        stack = self._stacks.get(name)
        if stack:
            stack[-1] = value
            return True
        return False

    def snapshot(self) -> Dict[Symbol, Any]:
        return {name: stack[-1] for name, stack in self._stacks.items()}


class GlobalEnvironment:
    """Global variables, function definitions, macros and intrinsics.

    One :class:`GlobalEnvironment` backs one *workflow program* (or one
    interactive session).  It is deliberately not captured inside
    continuations: when a fiber migrates to another node, the receiving
    instance already has the workflow program loaded (Vinz wraps the
    program as a service deployed everywhere, Section 3.1), so only the
    fiber-local state needs to travel.
    """

    def __init__(self):
        self.variables: Dict[Symbol, Any] = {}
        self.macros: Dict[Symbol, Any] = {}
        #: intrinsics are host-implemented operators reachable via the
        #: ``(% name ...)`` syntax and ``%name`` function calls
        #: (Listing 2 uses ``(% is-fiber-thread)``, Listing 5 generates
        #: ``%get-task-var`` calls).
        self.intrinsics: Dict[str, Callable] = {}
        #: names declared special with ``defvar``/``deftaskvar``.
        self.special_names: set = set()

    def lookup(self, name: Symbol) -> Any:
        value = self.variables.get(name, _MISSING)
        if value is _MISSING:
            raise UnboundVariableError(name)
        return value

    def lookup_or(self, name: Symbol, default: Any = None) -> Any:
        return self.variables.get(name, default)

    def is_bound(self, name: Symbol) -> bool:
        return name in self.variables

    def define(self, name: Symbol, value: Any) -> None:
        self.variables[name] = value

    def define_macro(self, name: Symbol, expander: Any) -> None:
        self.macros[name] = expander

    def get_macro(self, name: Symbol) -> Any:
        return self.macros.get(name)

    def define_intrinsic(self, name: str, fn: Callable) -> None:
        self.intrinsics[name] = fn
        # Intrinsics are also visible as ordinary %-prefixed functions.
        self.variables[Symbol("%" + name)] = fn

    def get_intrinsic(self, name: str) -> Optional[Callable]:
        return self.intrinsics.get(name)

    def declare_special(self, name: Symbol) -> None:
        self.special_names.add(name)

    def is_special(self, name: Symbol) -> bool:
        return name in self.special_names
