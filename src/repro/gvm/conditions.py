"""The Gozer condition system (paper Section 3.7).

Gozer "provides an implementation of the very general Common Lisp
condition system which goes above and beyond exception handling by not
requiring the stack to unwind to handle conditions".  The pieces:

* :class:`GozerCondition` — the condition value.  Conditions carry an
  optional *QName* (``{urn:service}Connect``) so that distributed error
  responses from services integrate with local handling, exactly as the
  paper describes for ``deflink``-generated functions.
* type specs — a handler matches conditions by host exception class
  name (the paper's "Java classes", here Python classes), by QName
  string, by condition-type symbol, or by a list of any of these.
* the handler/restart *stacks* live on the VM
  (:mod:`repro.gvm.vm`); this module supplies the matching logic and
  the condition taxonomy.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from ..lang.symbols import Keyword, Symbol


class GozerCondition(Exception):
    """A signalable condition.

    ``condition_type`` is a symbolic type name (``error``, ``warning``,
    ``simple-error`` ...).  ``qname`` is set for conditions that arrived
    as service error responses (paper Section 3.7: "the response from
    the service might be an error, conveniently expressed as an XML
    QName").  ``wrapped`` holds a host exception when the condition was
    produced by one.
    """

    def __init__(self, message: str = "", condition_type: str = "error",
                 qname: Optional[str] = None, data: Any = None,
                 wrapped: Optional[BaseException] = None):
        super().__init__(message)
        self.message = message
        self.condition_type = condition_type
        self.qname = qname
        self.data = data
        self.wrapped = wrapped

    def __repr__(self) -> str:
        bits = [self.condition_type]
        if self.qname:
            bits.append(self.qname)
        if self.message:
            bits.append(repr(self.message))
        return f"#<condition {' '.join(bits)}>"


class GozerWarning(GozerCondition):
    def __init__(self, message: str = "", **kw):
        kw.setdefault("condition_type", "warning")
        super().__init__(message, **kw)


class UnhandledConditionError(GozerCondition):
    """Raised to the host when ``error`` finds no handler and no debugger."""

    def __init__(self, condition: GozerCondition):
        super().__init__(f"unhandled condition: {condition!r}",
                         condition_type="unhandled")
        self.condition = condition


#: The condition-type hierarchy.  Maps a type name to its parents.
#: ``condition`` is the root; ``serious-condition``/``error`` mirror CL.
CONDITION_HIERARCHY = {
    "condition": (),
    "warning": ("condition",),
    "serious-condition": ("condition",),
    "error": ("serious-condition",),
    "simple-error": ("error",),
    "type-error": ("error",),
    "arithmetic-error": ("error",),
    "division-by-zero": ("arithmetic-error",),
    "unbound-variable": ("error",),
    "undefined-function": ("error",),
    "control-error": ("error",),
    "service-error": ("error",),
    "network-error": ("service-error",),
    "timeout-error": ("service-error",),
    "unhandled": ("error",),
}

#: Host ("Java" in the paper) class-name aliases.  The paper's
#: Listing 6 uses names like ``java.lang.Throwable`` and
#: ``java.net.SocketException``; we keep those spellings working by
#: mapping them onto the closest Python classes.
HOST_CLASS_ALIASES = {
    "java.lang.Throwable": Exception,
    "java.lang.Exception": Exception,
    "java.lang.RuntimeException": Exception,
    "java.lang.Error": Exception,
    "java.net.SocketException": ConnectionError,
    "java.net.SocketTimeoutException": TimeoutError,
    "java.io.IOException": OSError,
    "java.lang.ArithmeticException": ArithmeticError,
    "java.lang.NullPointerException": AttributeError,
    "java.lang.IllegalArgumentException": ValueError,
}


def condition_type_matches(type_name: str, target: str) -> bool:
    """True when ``type_name`` is ``target`` or inherits from it."""
    if type_name == target:
        return True
    seen = set()
    stack = [type_name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for parent in CONDITION_HIERARCHY.get(current, ()):
            if parent == target:
                return True
            stack.append(parent)
    return False


def _spec_name(spec: Any) -> str:
    if isinstance(spec, Symbol):
        return spec.name
    if isinstance(spec, Keyword):
        return spec.name
    return str(spec)


def _python_class_for_name(name: str):
    alias = HOST_CLASS_ALIASES.get(name)
    if alias is not None:
        return alias
    builtin = getattr(__import__("builtins"), name, None)
    if isinstance(builtin, type) and issubclass(builtin, BaseException):
        return builtin
    if "." in name:
        module_name, _, cls_name = name.rpartition(".")
        try:
            module = __import__(module_name, fromlist=[cls_name])
            cls = getattr(module, cls_name, None)
            if isinstance(cls, type) and issubclass(cls, BaseException):
                return cls
        except ImportError:
            return None
    return None


def matches(spec: Any, condition: BaseException) -> bool:
    """Does handler type-spec ``spec`` match ``condition``?

    Specs (paper Listing 6):

    * a list — matches if any element matches;
    * a QName string ``"{urn:...}Name"`` — matches a condition's QName;
    * a host class name string (``"java.net.SocketException"``,
      ``"ValueError"``, ``"pkg.mod.Cls"``) — matches by class;
    * a symbol — matches a condition-type in the hierarchy, with ``t``
      and ``condition`` matching everything.
    """
    if isinstance(spec, (list, tuple)):
        return any(matches(item, condition) for item in spec)
    if spec is True:
        return True
    if isinstance(spec, str):
        if spec.startswith("{"):
            qname = getattr(condition, "qname", None)
            return qname == spec
        cls = _python_class_for_name(spec)
        if cls is not None:
            if isinstance(condition, cls):
                return True
            wrapped = getattr(condition, "wrapped", None)
            return wrapped is not None and isinstance(wrapped, cls)
        return False
    name = _spec_name(spec)
    if name in ("t", "condition"):
        return True
    if isinstance(condition, GozerCondition):
        return condition_type_matches(condition.condition_type, name)
    # Any host exception counts as an `error`.
    if name in ("error", "serious-condition"):
        return isinstance(condition, Exception)
    return False


def coerce_condition(value: Any, default_type: str = "simple-error") -> GozerCondition:
    """Normalize a ``signal``/``error`` argument into a condition object."""
    if isinstance(value, GozerCondition):
        return value
    if isinstance(value, BaseException):
        return GozerCondition(
            message=str(value),
            condition_type=_condition_type_for_exception(value),
            wrapped=value,
        )
    if isinstance(value, Symbol):
        return GozerCondition(message=value.name, condition_type=value.name)
    return GozerCondition(message=str(value), condition_type=default_type)


def _condition_type_for_exception(exc: BaseException) -> str:
    from ..lang.errors import UnboundVariableError, UndefinedFunctionError

    if isinstance(exc, ZeroDivisionError):
        return "division-by-zero"
    if isinstance(exc, ArithmeticError):
        return "arithmetic-error"
    if isinstance(exc, TypeError):
        return "type-error"
    if isinstance(exc, UnboundVariableError):
        return "unbound-variable"
    if isinstance(exc, UndefinedFunctionError):
        return "undefined-function"
    if isinstance(exc, (ConnectionError, TimeoutError)):
        return "network-error"
    return "error"


def make_condition(condition_type: str, message: str = "",
                   qname: Optional[str] = None, data: Any = None) -> GozerCondition:
    """Constructor exposed to Gozer as ``make-condition``."""
    return GozerCondition(message=message, condition_type=condition_type,
                          qname=qname, data=data)


def define_condition_type(name: str, parents: Iterable[str] = ("error",)) -> None:
    """Extend the hierarchy (Gozer's ``define-condition``)."""
    CONDITION_HIERARCHY[name] = tuple(parents)
