"""Continuations: the mechanism behind workflow migration.

Paper Section 3.1: "A continuation represents the completion of the same
flow of control (compare to a future, which represents the completion of
a *different* flow of control)."  The GVM grants one at any ``yield`` or
``push-cc``.  Vinz serializes continuations to the shared store and
resumes them on whatever node the message queue picks — that is the
entire distribution story, so continuations must be:

* *self-contained*: a deep snapshot of the frame stack, sharing nothing
  mutable with the running fiber;
* *future-free*: every future reachable from the snapshot is determined
  first (Section 4.1);
* *serializable*: plain data + code objects, picklable as-is.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional

from ..lang.bytecode import CodeObject
from ..lang.symbols import Symbol
from .frames import Frame
from .futures import find_futures

# CodeObjects and Symbols are immutable after compilation: teach deepcopy
# to share them instead of duplicating the whole program per snapshot.
CodeObject.__deepcopy__ = lambda self, memo: self  # type: ignore[attr-defined]
Symbol.__deepcopy__ = lambda self, memo: self  # type: ignore[attr-defined]


class Continuation:
    """A resumable snapshot of a fiber's control state.

    ``frames`` is a deep copy of the VM frame stack at capture time, with
    the program counter of the top frame pointing just *after* the
    capturing instruction, and its operand stack expecting the resume
    value to be pushed.  ``handlers``/``restarts`` snapshot the dynamic
    condition-system state; ``dynamics`` snapshots special-variable
    bindings.
    """

    def __init__(self, frames: List[Frame], handlers: list, restarts: list,
                 dynamics: dict, label: str = "continuation"):
        self.frames = frames
        self.handlers = handlers
        self.restarts = restarts
        self.dynamics = dynamics
        self.label = label

    def __repr__(self) -> str:
        top = self.frames[-1].function_name if self.frames else "?"
        return f"#<continuation {self.label} at {top} ({len(self.frames)} frames)>"

    # Pickle as a fixed-order tuple rather than the instance __dict__:
    # the stable field ordering — with the frame stack *last*, deepest
    # frame first — keeps the hot mutation (the top frame's pc and
    # operand stack) at the tail of the serialized stream, so
    # content-defined chunking (persistsnap) finds the long unchanged
    # prefix byte-identical between suspensions and dedups it.
    def __getstate__(self):
        return ("gozer-continuation", self.label, self.dynamics,
                self.handlers, self.restarts, self.frames)

    def __setstate__(self, state):
        if isinstance(state, dict):  # legacy v1 blobs pickled __dict__
            self.__dict__.update(state)
            return
        _tag, label, dynamics, handlers, restarts, frames = state
        self.label = label
        self.dynamics = dynamics
        self.handlers = handlers
        self.restarts = restarts
        self.frames = frames

    def estimated_size(self) -> int:
        """A rough serialized-size estimate (frame and stack counts)."""
        return sum(len(f.stack) + len(f.code.instructions) for f in self.frames)


def capture(frames: List[Frame], handlers: list, restarts: list,
            dynamics: dict, label: str = "continuation") -> Continuation:
    """Snapshot the given VM state into a :class:`Continuation`.

    Enforces the determination rule: every future reachable from the
    frames is touched (blocking if necessary) before the copy is taken,
    so "the continuation doesn't become available until all futures have
    completed" (Section 4.1).
    """
    for future in find_futures(frames):
        future.touch()
    memo: dict = {}
    frames_copy = copy.deepcopy(frames, memo)
    handlers_copy = copy.deepcopy(handlers, memo)
    restarts_copy = copy.deepcopy(restarts, memo)
    dynamics_copy = copy.deepcopy(dynamics, memo)
    return Continuation(frames_copy, handlers_copy, restarts_copy,
                        dynamics_copy, label=label)


def materialize(continuation: Continuation) -> tuple:
    """Produce fresh, runnable state from a continuation.

    The continuation itself stays untouched, so it can be resumed more
    than once (each resume gets an independent copy) — this is also what
    makes ``fork-and-exec`` cloning (Section 3.4) a one-liner.
    """
    memo: dict = {}
    frames = copy.deepcopy(continuation.frames, memo)
    handlers = copy.deepcopy(continuation.handlers, memo)
    restarts = copy.deepcopy(continuation.restarts, memo)
    dynamics = copy.deepcopy(continuation.dynamics, memo)
    return frames, handlers, restarts, dynamics
