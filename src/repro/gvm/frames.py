"""Heap-allocated call frames and function objects.

Paper, Section 4.1: "The stack consists of ordinary Java objects
representing function calls together with arguments, local variables,
etc.  These objects are used to create the continuations requested by
``yield`` and ``push-cc``."  This module is the Python incarnation of
those objects.  Everything here pickles, because a suspended fiber *is*
(a compressed pickle of) a stack of these frames (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..lang.bytecode import CodeObject, ParamSpec
from ..lang.errors import GozerRuntimeError, WrongArgumentCount
from ..lang.symbols import Keyword, Symbol
from .environment import Env


class GozerFunction:
    """A compiled Gozer closure: code + captured lexical environment."""

    __slots__ = ("code", "closure", "name")

    def __init__(self, code: CodeObject, closure: Optional[Env], name: Optional[str] = None):
        self.code = code
        self.closure = closure
        self.name = name or code.name

    def __repr__(self) -> str:
        return f"#<function {self.name}>"

    @property
    def doc(self) -> Optional[str]:
        return self.code.doc


class GozerMacro:
    """A macro: a function from source forms to a source form.

    Stored in the global environment's macro table; applied by the
    compiler at expansion time rather than by the VM at run time.
    """

    __slots__ = ("function", "name")

    def __init__(self, function: Any, name: str):
        self.function = function
        self.name = name

    def __repr__(self) -> str:
        return f"#<macro {self.name}>"


@dataclass
class BlockRecord:
    """A ``block``/``return-from`` target inside one frame.

    The depth fields snapshot every stack-like resource at the moment
    the block was established, so a non-local exit can restore all of
    them (running any intervening ``unwind-protect`` cleanups).
    """

    name: Optional[Symbol]
    exit_pc: int
    stack_depth: int
    scope_depth: int
    unwind_depth: int = 0
    handler_depth: int = 0
    restart_depth: int = 0


@dataclass
class HandlerGroup:
    """One ``handler-bind`` group: [(type-spec, handler-fn), ...].

    ``frame_index`` records how deep in the fiber's frame stack the
    establishing frame sits, so ``signal`` can run handlers in
    innermost-first order across frames.
    """

    handlers: List[Tuple[Any, Any]]
    frame_index: int


@dataclass
class RestartRecord:
    """One restart clause established by ``restart-case``.

    Invoking the restart unwinds to ``frame_index`` and runs ``code``
    (a clause body compiled as a function of the restart's arguments),
    whose value becomes the value of the whole ``restart-case``.
    """

    name: Symbol
    code: Any  # GozerFunction
    frame_index: int
    exit_pc: int
    stack_depth: int
    scope_depth: int
    unwind_depth: int = 0
    handler_depth: int = 0
    restart_depth: int = 0

    def __repr__(self) -> str:
        return f"#<restart {self.name.name}>"


@dataclass
class UnwindRecord:
    """A pending ``unwind-protect`` cleanup in one frame."""

    thunk: Any  # GozerFunction of no arguments
    scope_depth: int


class Frame:
    """One activation record of the GVM.

    Unlike a CPython frame, this object is plain data: the interpreter
    loop in :mod:`repro.gvm.vm` reads ``pc``, pushes/pops ``stack`` and
    consults ``env``.  Capturing a continuation deep-copies a list of
    these.
    """

    __slots__ = (
        "code",
        "pc",
        "stack",
        "env",
        "scopes",
        "blocks",
        "unwinds",
        "dynamic_bound",
        "function_name",
    )

    def __init__(self, code: CodeObject, env: Env, function_name: Optional[str] = None):
        self.code = code
        self.pc = 0
        self.stack: List[Any] = []
        self.env = env
        #: how many push-scope instructions are active (for unwinding)
        self.scopes = 0
        self.blocks: List[BlockRecord] = []
        self.unwinds: List[UnwindRecord] = []
        #: dynamically bound special variables to pop when this frame exits
        self.dynamic_bound: List[Symbol] = []
        self.function_name = function_name or code.name

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        return self.stack.pop()

    def top(self) -> Any:
        return self.stack[-1]

    def __repr__(self) -> str:
        return f"<Frame {self.function_name} pc={self.pc} stack={len(self.stack)}>"


def bind_parameters(spec: ParamSpec, args: List[Any], env: Env,
                    fname: str, eval_default: Callable[[CodeObject, Env], Any]) -> None:
    """Destructure ``args`` into ``env`` according to a lambda list.

    ``eval_default`` evaluates a compiled default-value thunk for
    ``&optional``/``&key`` parameters that were not supplied; the VM
    passes a callback that runs the thunk in a nested evaluation.
    """
    n_req = len(spec.required)
    if len(args) < n_req:
        raise WrongArgumentCount(fname, spec.arity_description(), len(args))

    for name, value in zip(spec.required, args):
        env.bind(name, value)
    rest = args[n_req:]

    for name, default in spec.optional:
        if rest:
            env.bind(name, rest.pop(0))
        else:
            env.bind(name, eval_default(default, env) if default is not None else None)

    if spec.keys:
        # Everything left must be alternating Keyword/value pairs.
        if len(rest) % 2 != 0:
            raise WrongArgumentCount(fname, "keyword/value pairs", len(rest))
        supplied = {}
        for i in range(0, len(rest), 2):
            key = rest[i]
            if not isinstance(key, Keyword):
                raise GozerRuntimeError(
                    f"{fname}: expected a keyword argument name, got {key!r}"
                )
            supplied[key.name] = rest[i + 1]
        known = set()
        for name, default in spec.keys:
            key_name = name.name
            known.add(key_name)
            if key_name in supplied:
                env.bind(name, supplied[key_name])
            else:
                env.bind(name, eval_default(default, env) if default is not None else None)
        unknown = set(supplied) - known
        if unknown:
            raise GozerRuntimeError(f"{fname}: unknown keyword arguments {sorted(unknown)}")
        rest = []

    if spec.rest is not None:
        env.bind(spec.rest, list(rest))
    elif rest and not spec.keys:
        raise WrongArgumentCount(fname, spec.arity_description(), len(args))
