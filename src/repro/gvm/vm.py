"""The Gozer Virtual Machine (paper Section 4.1).

A stack-oriented bytecode interpreter whose call stack is a list of
heap-allocated :class:`~repro.gvm.frames.Frame` objects rather than the
host stack.  That one design decision buys everything the paper needs:

* ``yield``/``push-cc`` capture the frame list as a
  :class:`~repro.gvm.continuations.Continuation`;
* Vinz serializes continuations to persistent storage and resumes them
  on other nodes (Section 4.2);
* non-local control (``return-from``, restarts, condition handling) is
  frame-list surgery instead of host-stack unwinding.

Nested evaluation (calling a Gozer handler function from inside the
``signal`` machinery, running an ``unwind-protect`` cleanup, evaluating
an ``&optional`` default) re-enters :meth:`VM._execute_loop`
recursively; control transfers that target frames *below* a nested
loop's base propagate as :class:`_Transfer` exceptions until the loop
that owns the target frame catches them.  ``yield`` is only legal at
nesting depth 1 — the paper's rule that a future's background thread
cannot migrate the fiber falls out of this naturally.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..lang.bytecode import CodeObject
from ..lang.errors import (
    ControlFlowSignal,
    GozerRuntimeError,
    UnboundVariableError,
)
from ..lang.symbols import Symbol
from .conditions import (
    GozerCondition,
    UnhandledConditionError,
    coerce_condition,
    matches,
)
from .continuations import Continuation, capture, materialize
from .environment import DynamicBindings, Env, GlobalEnvironment, _MISSING
from .frames import (
    BlockRecord,
    Frame,
    GozerFunction,
    HandlerGroup,
    RestartRecord,
    UnwindRecord,
    bind_parameters,
)
from .futures import GozerFuture, force, force_all

_CONTINUE = object()


@dataclass
class Done:
    """The fiber ran to completion with ``value``."""

    value: Any


@dataclass
class Yielded:
    """The fiber executed ``yield``: it can be resumed from ``continuation``.

    ``value`` is the operand of the ``yield`` form — Vinz uses it to
    carry request descriptors out of the workflow (Section 3.2).
    """

    continuation: Continuation
    value: Any


class YieldFromNestedContext(GozerRuntimeError):
    """``yield`` attempted where the frame stack is not fully capturable.

    Raised when Gozer code yields from inside a nested evaluation (a
    future's thread, a handler call, a cleanup thunk).  Vinz-generated
    service stubs avoid this by checking ``(% is-fiber-thread)`` first
    and making a synchronous request instead (paper Section 3.2).
    """


class _Transfer(ControlFlowSignal):
    """Internal: a non-local transfer to a block or restart."""

    def __init__(self, frame_index: int, kind: str, record: Any, payload: Any):
        super().__init__(f"transfer to {kind} in frame {frame_index}")
        self.frame_index = frame_index
        self.kind = kind  # "block" | "restart"
        self.record = record
        self.payload = payload


class _YieldSignal(ControlFlowSignal):
    def __init__(self, continuation: Continuation, value: Any):
        super().__init__("yield")
        self.continuation = continuation
        self.value = value


class VM:
    """One GVM instance: executes one flow of control at a time.

    Each fiber gets its own VM; each future gets its own VM on its own
    thread (created by the runtime's future runner).  VMs share the
    immutable program (:class:`GlobalEnvironment` definitions) with
    their siblings but own all mutable control state.
    """

    def __init__(self, global_env: GlobalEnvironment,
                 future_submitter: Optional[Callable] = None,
                 allow_yield: bool = True):
        self.global_env = global_env
        #: callable(thunk: GozerFunction, vm) -> GozerFuture
        self.future_submitter = future_submitter
        self.allow_yield = allow_yield
        self.frames: List[Frame] = []
        self.handlers: List[HandlerGroup] = []
        self.restarts: List[RestartRecord] = []
        self.dynamics = DynamicBindings()
        self._depth = 0
        self._loop_bases: set = set()
        #: instruction counter, for the GVM benchmarks
        self.instruction_count = 0
        #: profiling hook: called with the number of instructions one
        #: top-level run executed (set by Vinz to feed the per-fiber-run
        #: instruction histogram); a single None-check on the exit path
        self.profile_sink: Optional[Callable] = None
        #: hook for Vinz: called with the VM before each yield capture
        self.pre_yield_hook: Optional[Callable] = None
        #: the runtime's time source (``(get-universal-time)``/``(sleep)``
        #: route through it); set by Runtime.new_vm, None for bare VMs
        self.clock = None
        #: debugging: called as hook(frame, op, arg) before every
        #: instruction.  Setting it routes execution through a slower
        #: traced loop; the fast path stays hook-free.
        self.instruction_hook: Optional[Callable] = None
        #: debugging: called as hook(depth, name, args) at every Gozer
        #: function entry (one cheap None-check per call).
        self.call_hook: Optional[Callable] = None

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run_code(self, code: CodeObject, env: Optional[Env] = None):
        """Run a zero-argument code object to completion or first yield."""
        if self.frames:
            raise GozerRuntimeError("VM is already running")
        frame = Frame(code, env if env is not None else Env())
        return self._run_top(frame=frame)

    def resume(self, continuation: Continuation, value: Any = None):
        """Resume a captured continuation, delivering ``value``.

        The continuation is not consumed: resuming it again replays from
        the same point (``fork-and-exec``'s cloning relies on this).
        """
        if self.frames:
            raise GozerRuntimeError("VM is already running")
        frames, handlers, restarts, dynamics = materialize(continuation)
        self.handlers = handlers
        self.restarts = restarts
        self.dynamics = DynamicBindings()
        for name, dyn_value in dynamics.items():
            self.dynamics.push(name, dyn_value)
        frames[-1].push(value)
        self.frames = frames
        return self._run_top(frame=None)

    def call(self, fn: Any, args: List[Any]) -> Any:
        """Call a function to completion (nested: yields are illegal)."""
        if isinstance(fn, GozerFunction):
            frame = self._frame_for_call(fn, list(args))
            return self._execute_loop(frame)
        if callable(fn):
            return self._call_host(fn, list(args))
        raise GozerRuntimeError(f"not callable: {fn!r}")

    # ------------------------------------------------------------------
    # execution machinery
    # ------------------------------------------------------------------

    def _run_top(self, frame: Optional[Frame]):
        """Drive the outermost loop; translate yield into a result."""
        count_before = self.instruction_count
        try:
            if frame is not None:
                value = self._execute_loop(frame)
            else:
                value = self._execute_loop(None, base=0)
            return Done(value)
        except _YieldSignal as y:
            return Yielded(y.continuation, y.value)
        finally:
            if not self.frames:
                self.handlers.clear()
                self.restarts.clear()
            if self.profile_sink is not None:
                self.profile_sink(self.instruction_count - count_before)

    def _execute_loop(self, frame: Optional[Frame], base: Optional[int] = None) -> Any:
        """Run until the frame at ``base`` returns; give back its value."""
        if base is None:
            base = len(self.frames)
        if frame is not None:
            self.frames.append(frame)
        self._depth += 1
        self._loop_bases.add(base)
        try:
            while len(self.frames) > base:
                try:
                    result = self._run_fast(self.frames[-1])
                    if result is not _CONTINUE and len(self.frames) == base:
                        return result
                except _Transfer as transfer:
                    if transfer.frame_index >= base:
                        self._perform_transfer(transfer)
                    else:
                        raise
                except (_YieldSignal, UnhandledConditionError,
                        YieldFromNestedContext):
                    raise
                except ControlFlowSignal:
                    raise
                except Exception as exc:  # noqa: BLE001 - routed to conditions
                    if getattr(exc, "tunnels_through_vm", False):
                        # platform-level faults (e.g. simulated store
                        # IO errors) abort the whole operation window
                        # and are retried by the cluster — they are not
                        # conditions the workflow program can handle
                        raise
                    try:
                        self.signal(coerce_condition(exc), error_p=True)
                    except _Transfer as transfer:
                        if transfer.frame_index >= base:
                            self._perform_transfer(transfer)
                        else:
                            raise
            raise GozerRuntimeError("frame stack underflow")  # pragma: no cover
        except (UnhandledConditionError, YieldFromNestedContext):
            self._abandon_frames(base)
            raise
        finally:
            self._depth -= 1
            self._loop_bases.discard(base)

    def _run_fast(self, frame: Frame):
        """The hot dispatch loop.

        Executes straight-line instructions of ``frame`` with
        method-local state (no repeated ``frames[-1]`` lookups — the
        classic bytecode-interpreter optimization); delegates to
        :meth:`_step_rare` for anything that changes the frame stack or
        the condition system, then returns to the driving loop.
        """
        if self.instruction_hook is not None:
            return self._run_traced(frame)
        stack = frame.stack
        instructions = frame.code.instructions
        pc = frame.pc
        count = 0
        try:
            while True:
                op, arg = instructions[pc]
                pc += 1
                count += 1
                if op == "const":
                    stack.append(copy.deepcopy(arg)
                                 if type(arg) is list else arg)
                elif op == "load":
                    stack.append(self._load(frame, arg))
                elif op == "jump":
                    pc = arg
                elif op == "jump-if-false":
                    value = stack.pop()
                    if value is None or value is False:
                        pc = arg
                elif op == "jump-if-true":
                    value = stack.pop()
                    if value is not None and value is not False:
                        pc = arg
                elif op == "store":
                    self._store(frame, arg, stack.pop())
                elif op == "bind":
                    frame.env.bindings[arg] = stack.pop()
                elif op == "pop":
                    stack.pop()
                elif op == "dup":
                    stack.append(stack[-1])
                elif op == "push-scope":
                    frame.env = Env(parent=frame.env)
                    frame.scopes += 1
                elif op == "pop-scope":
                    frame.env = frame.env.parent
                    frame.scopes -= 1
                elif op == "closure":
                    stack.append(GozerFunction(arg, frame.env))
                elif op == "make-list":
                    if arg:
                        values = stack[len(stack) - arg:]
                        del stack[len(stack) - arg:]
                        stack.append(values)
                    else:
                        stack.append([])
                elif op == "load-global":
                    stack.append(self.global_env.lookup(arg))
                elif op == "store-global":
                    self.global_env.define(arg, stack.pop())
                else:
                    # rare/control instruction: hand off with pc synced
                    frame.pc = pc
                    return self._step_rare(frame, op, arg)
        finally:
            frame.pc = pc
            self.instruction_count += count

    def _run_traced(self, frame: Frame):
        """Instruction-hooked variant of the dispatch loop (debugger).

        Executes exactly one instruction per iteration so the hook sees
        every step; used only while ``instruction_hook`` is set.
        """
        while True:
            op, arg = frame.code.instructions[frame.pc]
            self.instruction_hook(frame, op, arg)
            frame.pc += 1
            self.instruction_count += 1
            if op == "const":
                frame.push(copy.deepcopy(arg) if type(arg) is list else arg)
            elif op == "load":
                frame.push(self._load(frame, arg))
            elif op == "jump":
                frame.pc = arg
            elif op == "jump-if-false":
                if not truthy(frame.pop()):
                    frame.pc = arg
            elif op == "jump-if-true":
                if truthy(frame.pop()):
                    frame.pc = arg
            elif op == "store":
                self._store(frame, arg, frame.pop())
            elif op == "bind":
                frame.env.bindings[arg] = frame.pop()
            elif op == "pop":
                frame.pop()
            elif op == "dup":
                frame.push(frame.top())
            elif op == "push-scope":
                frame.env = Env(parent=frame.env)
                frame.scopes += 1
            elif op == "pop-scope":
                frame.env = frame.env.parent
                frame.scopes -= 1
            elif op == "closure":
                frame.push(GozerFunction(arg, frame.env))
            elif op == "make-list":
                stack = frame.stack
                if arg:
                    values = stack[len(stack) - arg:]
                    del stack[len(stack) - arg:]
                    stack.append(values)
                else:
                    stack.append([])
            elif op == "load-global":
                frame.push(self.global_env.lookup(arg))
            elif op == "store-global":
                self.global_env.define(arg, frame.pop())
            else:
                return self._step_rare(frame, op, arg)

    def _step_rare(self, frame: Frame, op: str, arg):
        """Frame-stack-changing and condition-system instructions."""
        if op == "call":
            self._op_call(frame, arg, tail=False)
        elif op == "tail-call":
            self._op_call(frame, arg, tail=True)
        elif op == "return":
            return self._op_return(frame.pop())
        elif op == "push-block":
            name, exit_pc = arg
            frame.blocks.append(BlockRecord(
                name=name, exit_pc=exit_pc,
                stack_depth=len(frame.stack), scope_depth=frame.scopes,
                unwind_depth=len(frame.unwinds),
                handler_depth=len(self.handlers),
                restart_depth=len(self.restarts)))
        elif op == "pop-block":
            for _ in range(arg):
                frame.blocks.pop()
        elif op == "return-from":
            self._op_return_from(arg, frame.pop())
        elif op == "yield":
            self._op_yield(frame)
        elif op == "push-cc":
            self._op_push_cc(frame)
        elif op == "spawn-future":
            self._op_spawn_future(frame, arg)
        elif op == "push-handlers":
            flat = frame.pop()
            pairs = [(flat[i], flat[i + 1]) for i in range(0, len(flat), 2)]
            self.handlers.append(HandlerGroup(pairs, len(self.frames) - 1))
        elif op == "pop-handlers":
            for _ in range(arg):
                self.handlers.pop()
        elif op == "push-restarts":
            names, exit_pc = arg
            closures = frame.stack[len(frame.stack) - len(names):]
            del frame.stack[len(frame.stack) - len(names):]
            group_base = len(self.restarts)
            for name, fn in zip(names, closures):
                self.restarts.append(RestartRecord(
                    name=name, code=fn, frame_index=len(self.frames) - 1,
                    exit_pc=exit_pc, stack_depth=len(frame.stack),
                    scope_depth=frame.scopes,
                    unwind_depth=len(frame.unwinds),
                    handler_depth=len(self.handlers),
                    restart_depth=group_base))
        elif op == "pop-restarts":
            frame_index = len(self.frames) - 1
            while self.restarts and self.restarts[-1].frame_index == frame_index \
                    and self.restarts[-1].exit_pc == frame.pc:
                self.restarts.pop()
        elif op == "push-unwind":
            frame.unwinds.append(UnwindRecord(GozerFunction(arg, frame.env),
                                              frame.scopes))
        elif op == "pop-unwind":
            record = frame.unwinds.pop()
            self.call(record.thunk, [])
        elif op == "dyn-bind":
            self.dynamics.push(arg, frame.pop())
            frame.dynamic_bound.append(arg)
        elif op == "dyn-unbind":
            self.dynamics.pop(arg)
            if arg in frame.dynamic_bound:
                for i in range(len(frame.dynamic_bound) - 1, -1, -1):
                    if frame.dynamic_bound[i] is arg:
                        del frame.dynamic_bound[i]
                        break
        else:  # pragma: no cover
            raise GozerRuntimeError(f"unknown opcode {op!r}")
        return _CONTINUE

    # -- variable access -------------------------------------------------

    def _load(self, frame: Frame, name: Symbol) -> Any:
        value = frame.env.lookup_or(name, _MISSING)
        if value is not _MISSING:
            return value
        dyn = self.dynamics.get(name)
        if dyn is not _MISSING:
            return dyn
        value = self.global_env.lookup_or(name, _MISSING)
        if value is not _MISSING:
            return value
        raise UnboundVariableError(name)

    def _store(self, frame: Frame, name: Symbol, value: Any) -> None:
        if frame.env.assign(name, value):
            return
        if self.dynamics.set(name, value):
            return
        # Scripting-language behaviour: setq on an unbound name creates
        # a global (Gozer is "a scripting language", paper Section 1).
        self.global_env.define(name, value)

    # -- calls -------------------------------------------------------------

    def _op_call(self, frame: Frame, nargs: int, tail: bool) -> None:
        stack = frame.stack
        if nargs:
            args = stack[-nargs:]
            del stack[-nargs:]
        else:
            args = []
        callee = stack.pop()
        if type(callee) is GozerFunction:
            new_frame = self._frame_for_call(callee, args)
            if tail and not frame.unwinds and not frame.dynamic_bound \
                    and not frame.blocks:
                # Proper tail call: replace the caller's frame (keeps
                # recursive Gozer code O(1) in frame-stack depth).
                self.frames[-1] = new_frame
            else:
                self.frames.append(new_frame)
            return
        if isinstance(callee, GozerFuture):
            callee = callee.touch()
            if isinstance(callee, GozerFunction):
                self.frames.append(self._frame_for_call(callee, args))
                return
        if callable(callee):
            stack.append(self._call_host(callee, args))
            return
        raise GozerRuntimeError(f"not callable: {callee!r}")

    def _call_host(self, fn: Callable, args: List[Any]) -> Any:
        if getattr(fn, "needs_vm", False):
            return fn(self, *args)
        # Rule from Section 4.1: passing a future to a host library
        # determines it first.
        for i, value in enumerate(args):
            if type(value) is GozerFuture:
                args[i] = value.touch()
        return fn(*args)

    def _frame_for_call(self, fn: GozerFunction, args: List[Any]) -> Frame:
        if self.call_hook is not None:
            self.call_hook(len(self.frames), fn.name, args)
        code = fn.code
        params = code.params
        required = params.required
        # fast path: required-only lambda lists (the overwhelmingly
        # common case) bind with one dict construction
        if not params.optional and not params.keys and params.rest is None:
            if len(args) != len(required):
                from ..lang.errors import WrongArgumentCount

                raise WrongArgumentCount(fn.name,
                                         params.arity_description(),
                                         len(args))
            env = Env(fn.closure, dict(zip(required, args)))
        else:
            env = Env(parent=fn.closure)
            bind_parameters(params, args, env, fn.name, self._eval_default)
        return Frame(code, env, function_name=fn.name)

    def _eval_default(self, default_code: Optional[CodeObject], env: Env) -> Any:
        if default_code is None:
            return None
        return self._execute_loop(Frame(default_code, Env(parent=env)))

    def _op_return(self, value: Any):
        frame = self.frames.pop()
        self._teardown_frame(frame)
        if len(self.frames) in self._loop_bases:
            # This frame was the base of an active loop: hand the value
            # back to that loop's Python-level caller.
            return value
        self.frames[-1].push(value)
        return _CONTINUE

    # -- non-local control ---------------------------------------------------

    def _op_return_from(self, name: Optional[Symbol], value: Any) -> None:
        for frame_index in range(len(self.frames) - 1, -1, -1):
            candidate = self.frames[frame_index]
            for block_index in range(len(candidate.blocks) - 1, -1, -1):
                record = candidate.blocks[block_index]
                if record.name is name:
                    raise _Transfer(frame_index, "block",
                                    (block_index, record), value)
        raise GozerRuntimeError(f"return-from: no active block named {name}")

    def _perform_transfer(self, transfer: _Transfer) -> None:
        # 1. unwind every frame above the target (running cleanups)
        while len(self.frames) - 1 > transfer.frame_index:
            dead = self.frames.pop()
            self._teardown_frame(dead)
        frame = self.frames[transfer.frame_index]
        if transfer.kind == "block":
            block_index, record = transfer.record
            self._restore_frame_to(frame, record)
            del frame.blocks[block_index:]
            self._truncate_dynamic_state(record)
            frame.stack.append(transfer.payload)
            frame.pc = record.exit_pc
        elif transfer.kind == "restart":
            record = transfer.record
            self._restore_frame_to(frame, record)
            self._truncate_dynamic_state(record)
            frame.blocks = [b for b in frame.blocks
                            if b.stack_depth <= record.stack_depth]
            # Splice the restart clause into the fiber's own flow of
            # control: its frame runs in this loop and its return value
            # lands at the restart-case's exit.  Running it as a nested
            # call would make a `retry` clause that re-issues a
            # non-blocking service request (paper Listing 2) unable to
            # yield.
            frame.pc = record.exit_pc
            clause_frame = self._frame_for_call(record.code,
                                                list(transfer.payload))
            self.frames.append(clause_frame)
        else:  # pragma: no cover
            raise GozerRuntimeError(f"unknown transfer kind {transfer.kind}")

    def _restore_frame_to(self, frame: Frame, record) -> None:
        # run intervening unwind-protect cleanups, innermost first
        while len(frame.unwinds) > record.unwind_depth:
            unwind = frame.unwinds.pop()
            self.call(unwind.thunk, [])
        while frame.scopes > record.scope_depth:
            frame.env = frame.env.parent
            frame.scopes -= 1
        del frame.stack[record.stack_depth:]

    def _truncate_dynamic_state(self, record) -> None:
        del self.handlers[record.handler_depth:]
        del self.restarts[record.restart_depth:]

    def _teardown_frame(self, frame: Frame) -> None:
        """Run cleanups when a frame is discarded for any reason."""
        while frame.unwinds:
            unwind = frame.unwinds.pop()
            self.call(unwind.thunk, [])
        for name in reversed(frame.dynamic_bound):
            self.dynamics.pop(name)
        frame.dynamic_bound.clear()
        frame_index = len(self.frames)  # the index this frame occupied
        if any(g.frame_index >= frame_index for g in self.handlers):
            self.handlers[:] = [g for g in self.handlers
                                if g.frame_index < frame_index]
        if any(r.frame_index >= frame_index for r in self.restarts):
            self.restarts[:] = [r for r in self.restarts
                                if r.frame_index < frame_index]

    def _abandon_frames(self, base: int) -> None:
        """Unwind to ``base`` when an unhandled error escapes the loop."""
        while len(self.frames) > base:
            dead = self.frames.pop()
            try:
                self._teardown_frame(dead)
            except Exception:  # noqa: BLE001 - cleanup errors are secondary
                pass

    # -- continuations -----------------------------------------------------

    def _op_yield(self, frame: Frame) -> None:
        value = frame.pop()
        if not self.allow_yield or self._depth != 1:
            frame.pc -= 1  # leave state consistent for diagnostics
            raise YieldFromNestedContext(
                "yield is only legal on the fiber's own thread at top level"
            )
        if self.pre_yield_hook is not None:
            self.pre_yield_hook(self)
        continuation = capture(self.frames, self.handlers, self.restarts,
                               self.dynamics.snapshot(), label="yield")
        self.frames = []
        self.handlers = []
        self.restarts = []
        raise _YieldSignal(continuation, value)

    def _op_push_cc(self, frame: Frame) -> None:
        if self._depth != 1:
            raise YieldFromNestedContext(
                "push-cc is only legal on the fiber's own thread at top level"
            )
        continuation = capture(self.frames, self.handlers, self.restarts,
                               self.dynamics.snapshot(), label="push-cc")
        frame.push(continuation)

    def _op_spawn_future(self, frame: Frame, code: CodeObject) -> None:
        if self.future_submitter is None:
            raise GozerRuntimeError("no future executor configured")
        thunk = GozerFunction(code, frame.env, name="future-body")
        frame.push(self.future_submitter(thunk, self))

    # -- condition system -----------------------------------------------------

    def signal(self, condition: GozerCondition, error_p: bool = False) -> Any:
        """Signal ``condition``: run matching handlers *without unwinding*.

        Handlers run innermost-first; each runs with itself and every
        inner handler unbound (standard CL semantics, preventing
        recursive handling).  A handler "handles" by performing a
        non-local transfer (invoking a restart or ``return-from``); if
        it returns normally it has declined.  When every handler
        declines: ``signal`` returns nil, ``error`` raises
        :class:`UnhandledConditionError` to the host.
        """
        saved = self.handlers
        try:
            for index in range(len(saved) - 1, -1, -1):
                group = saved[index]
                for spec, handler_fn in group.handlers:
                    if matches(spec, condition):
                        self.handlers = saved[:index]
                        try:
                            self.call(handler_fn, [condition])
                        finally:
                            self.handlers = saved
        finally:
            self.handlers = saved
        if error_p:
            raise UnhandledConditionError(condition)
        return None

    def find_restart(self, name) -> Optional[RestartRecord]:
        target = name.name if isinstance(name, Symbol) else str(name)
        for record in reversed(self.restarts):
            if record.name.name == target:
                return record
        return None

    def invoke_restart(self, name, args: List[Any]) -> None:
        record = self.find_restart(name)
        if record is None:
            raise GozerRuntimeError(f"no active restart named {name}")
        raise _Transfer(record.frame_index, "restart", record, list(args))


def truthy(value: Any) -> bool:
    """Gozer truth: only nil (None) and false are false (Clojure rule)."""
    return value is not None and value is not False
