"""A tree-walking reference interpreter for Gozer.

Paper Section 4.1: "Compilation to bytecode (as opposed to a
tree-walking interpreter) was introduced as an optimization for Vinz
persistence."  This module is that pre-optimization interpreter,
re-created for two purposes:

* benchmark **S4c** (``benchmarks/bench_gvm.py``) compares it against
  the bytecode VM to reproduce the claim;
* the differential test suite runs pure programs through both
  implementations and asserts identical results.

Because it recurses on the *host* stack, this interpreter fundamentally
cannot support ``yield``/``push-cc`` — exactly the limitation that
motivated the GVM's heap-frame design.  Attempting either raises
:class:`ContinuationsUnsupported`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..lang.errors import GozerRuntimeError, UnboundVariableError
from ..lang.macros import is_listform, macroexpand
from ..lang.reader import Char
from ..lang.symbols import Keyword, Symbol
from .environment import Env, GlobalEnvironment, _MISSING
from .futures import force, force_all
from .vm import truthy

_S = Symbol


class ContinuationsUnsupported(GozerRuntimeError):
    """yield/push-cc require the bytecode VM's heap frames."""


class _BlockExit(Exception):
    def __init__(self, name, value):
        self.name = name
        self.value = value


class TreeFunction:
    """A closure of the tree interpreter."""

    __slots__ = ("params", "body", "closure", "name", "interp")

    def __init__(self, params: List[Symbol], body: List[Any], closure: Env,
                 name: str, interp: "TreeInterpreter"):
        self.params = params
        self.body = body
        self.closure = closure
        self.name = name
        self.interp = interp

    def __call__(self, *args):
        env = Env(parent=self.closure)
        if len(args) != len(self.params):
            raise GozerRuntimeError(
                f"{self.name}: expected {len(self.params)} args, got {len(args)}")
        for param, value in zip(self.params, args):
            env.bind(param, value)
        return self.interp.eval_body(self.body, env)

    def __repr__(self):
        return f"#<tree-function {self.name}>"


class TreeInterpreter:
    """Direct recursive evaluator over macro-expanded forms.

    Shares the global environment format (and therefore the standard
    library) with the VM, but calls Gozer closures by Python recursion.
    Only simple (required-only) lambda lists are supported — the
    interpreter predates the features the compiler grew.
    """

    def __init__(self, global_env: GlobalEnvironment,
                 apply_fn: Optional[Callable] = None):
        self.global_env = global_env
        self.apply_fn = apply_fn

    # -- public --------------------------------------------------------

    def eval(self, form: Any, env: Optional[Env] = None) -> Any:
        return self._eval(form, env if env is not None else Env())

    def eval_body(self, body: List[Any], env: Env) -> Any:
        value = None
        for form in body:
            value = self._eval(form, env)
        return value

    # -- dispatch --------------------------------------------------------

    def _eval(self, form: Any, env: Env) -> Any:
        form = macroexpand(form, self.global_env, self.apply_fn)
        if isinstance(form, Symbol):
            value = env.lookup_or(form, _MISSING)
            if value is not _MISSING:
                return value
            return self.global_env.lookup(form)
        if isinstance(form, (int, float, str, bool, Keyword, Char)) or form is None:
            return form
        if not isinstance(form, list):
            return form
        if not form:
            return []
        head = form[0]
        if isinstance(head, Symbol):
            method_name = _SPECIAL_NAMES.get(head.name)
            if method_name is not None:
                return getattr(self, method_name)(form, env)
        fn = self._eval(head, env)
        args = [self._eval(arg, env) for arg in form[1:]]
        return self._apply(fn, args)

    def _apply(self, fn: Any, args: List[Any]) -> Any:
        fn = force(fn)
        if isinstance(fn, TreeFunction):
            return fn(*args)
        if callable(fn):
            if getattr(fn, "needs_vm", False):
                raise GozerRuntimeError(
                    f"builtin {fn} requires the bytecode VM")
            return fn(*force_all(args))
        raise GozerRuntimeError(f"not callable: {fn!r}")

    # -- special forms -----------------------------------------------------

    def _sf_quote(self, form, env):
        return form[1]

    def _sf_if(self, form, env):
        if truthy(self._eval(form[1], env)):
            return self._eval(form[2], env)
        return self._eval(form[3], env) if len(form) > 3 else None

    def _sf_progn(self, form, env):
        return self.eval_body(form[1:], env)

    def _sf_let(self, form, env):
        new_env = Env(parent=env)
        for binding in form[1]:
            if isinstance(binding, Symbol):
                new_env.bind(binding, None)
            else:
                value = self._eval(binding[1] if len(binding) > 1 else None, env)
                new_env.bind(binding[0], value)
        return self.eval_body(form[2:], new_env)

    def _sf_let_star(self, form, env):
        new_env = Env(parent=env)
        for binding in form[1]:
            if isinstance(binding, Symbol):
                new_env.bind(binding, None)
            else:
                value = self._eval(binding[1] if len(binding) > 1 else None, new_env)
                new_env.bind(binding[0], value)
        return self.eval_body(form[2:], new_env)

    def _sf_lambda(self, form, env):
        params = [p for p in form[1] if isinstance(p, Symbol)]
        return TreeFunction(params, form[2:], env, "lambda", self)

    _sf_fn = _sf_lambda

    def _sf_defun(self, form, env):
        name, params, *body = form[1:]
        fn = TreeFunction([p for p in params if isinstance(p, Symbol)],
                          body, env, name.name, self)
        self.global_env.define(name, fn)
        return name

    def _sf_setq(self, form, env):
        value = self._eval(form[2], env)
        if not env.assign(form[1], value):
            self.global_env.define(form[1], value)
        return value

    def _sf_setf(self, form, env):
        """setf support, sharing the compiler's place expanders."""
        from ..lang.compiler import _DEFAULT_SETF_EXPANDERS

        if len(form) < 3:
            raise GozerRuntimeError("setf needs (setf place value)")
        place, value = form[1], form[2]
        if isinstance(place, Symbol):
            return self._sf_setq([form[0], place, value], env)
        if is_listform(place) and isinstance(place[0], Symbol):
            expander = _DEFAULT_SETF_EXPANDERS.get(place[0].name)
            if expander is not None:
                return self._eval(expander(place, value), env)
        raise GozerRuntimeError(f"setf: cannot set place {place!r}")

    def _sf_while(self, form, env):
        while truthy(self._eval(form[1], env)):
            for stmt in form[2:]:
                self._eval(stmt, env)
        return None

    def _sf_and(self, form, env):
        value = True
        for sub in form[1:]:
            value = self._eval(sub, env)
            if not truthy(value):
                return value
        return value

    def _sf_or(self, form, env):
        for sub in form[1:]:
            value = self._eval(sub, env)
            if truthy(value):
                return value
        return None

    def _sf_block(self, form, env):
        name = form[1]
        try:
            return self.eval_body(form[2:], env)
        except _BlockExit as exit_:
            if exit_.name is name:
                return exit_.value
            raise

    def _sf_return_from(self, form, env):
        value = self._eval(form[2], env) if len(form) > 2 else None
        raise _BlockExit(form[1], value)

    def _sf_return(self, form, env):
        value = self._eval(form[1], env) if len(form) > 1 else None
        raise _BlockExit(None, value)

    def _sf_function(self, form, env):
        target = form[1]
        if isinstance(target, Symbol):
            value = env.lookup_or(target, _MISSING)
            if value is not _MISSING:
                return value
            return self.global_env.lookup(target)
        return self._eval(target, env)

    def _sf_yield(self, form, env):
        raise ContinuationsUnsupported(
            "the tree-walking interpreter cannot capture the host stack; "
            "use the bytecode VM (this is the paper's Section 4.1 argument)")

    _sf_push_cc = _sf_yield
    _sf_future = _sf_yield


_SPECIAL_NAMES = {
    "quote": "_sf_quote",
    "if": "_sf_if",
    "progn": "_sf_progn",
    "let": "_sf_let",
    "let*": "_sf_let_star",
    "lambda": "_sf_lambda",
    "fn": "_sf_fn",
    "defun": "_sf_defun",
    "setq": "_sf_setq",
    "setf": "_sf_setf",
    "while": "_sf_while",
    "and": "_sf_and",
    "or": "_sf_or",
    "block": "_sf_block",
    "return-from": "_sf_return_from",
    "return": "_sf_return",
    "function": "_sf_function",
    "yield": "_sf_yield",
    "push-cc": "_sf_push_cc",
    "future": "_sf_future",
}
