"""The Gozer Virtual Machine: bytecode interpreter with continuations."""

from .vm import VM, Done, Yielded, YieldFromNestedContext, truthy
from .runtime import Runtime, make_runtime
from .continuations import Continuation, capture, materialize
from .futures import (
    FutureExecutor,
    GozerFuture,
    SynchronousFutureExecutor,
    ThreadPoolFutureExecutor,
    force,
    is_fiber_thread,
)
from .conditions import (
    GozerCondition,
    UnhandledConditionError,
    coerce_condition,
    matches,
)
from .environment import DynamicBindings, Env, GlobalEnvironment
from .frames import Frame, GozerFunction, GozerMacro
from .interpreter import ContinuationsUnsupported, TreeInterpreter

__all__ = [
    "VM", "Done", "Yielded", "YieldFromNestedContext", "truthy",
    "Runtime", "make_runtime", "Continuation", "capture", "materialize",
    "FutureExecutor", "GozerFuture", "SynchronousFutureExecutor",
    "ThreadPoolFutureExecutor", "force", "is_fiber_thread",
    "GozerCondition", "UnhandledConditionError", "coerce_condition",
    "matches", "DynamicBindings", "Env", "GlobalEnvironment",
    "Frame", "GozerFunction", "GozerMacro",
    "ContinuationsUnsupported", "TreeInterpreter",
]
