"""Futures — Gozer's local-parallelism primitive (paper Section 2).

A future "represents a computation that may not have completed yet, and
represents a promise to deliver the value of that computation when
required".  The GVM manages execution and determination transparently;
the programmer-facing operators are the ``future`` macro (a special
form here), ``touch`` and ``pcall``.

Determination rules implemented from Section 4.1:

* passing a future to a host ("Java") library or a service determines
  it — the VM forces future arguments before invoking host callables;
* capturing a continuation determines every future referenced from it
  ("the continuation doesn't become available until all futures have
  completed");
* futures pickle as their determined value, so a persisted fiber never
  contains a running computation.

The executor abstraction mirrors the JVM's ``ExecutorService``; BlueBox
supplies a load-balancing implementation
(:class:`repro.bluebox.executor.LoadBalancingExecutor`), and Vinz
configures fibers to use it — here the default is a plain thread pool.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Set

from ..lang.errors import GozerRuntimeError

_PENDING = "pending"
_RUNNING = "running"
_DETERMINED = "determined"
_FAILED = "failed"

#: Per-thread flag: is this thread advancing a fiber (as opposed to a
#: future's background processing thread)?  Vinz consults this to decide
#: whether a service request may migrate the fiber (paper Section 3.2:
#: "If a service request is attempted from a future's background
#: processing thread ... Vinz detects this and automatically makes a
#: standard synchronous request").
_thread_state = threading.local()


def enter_fiber_thread() -> None:
    _thread_state.is_fiber = True


def exit_fiber_thread() -> None:
    _thread_state.is_fiber = False


def is_fiber_thread() -> bool:
    return getattr(_thread_state, "is_fiber", False)


class GozerFuture:
    """A promise for the value of a different flow of control.

    Until determined the future is *undetermined*; ``touch`` blocks the
    toucher until determination.  Failure is propagated at touch time:
    the stored exception is re-raised in the touching thread.
    """

    __slots__ = ("_state", "_value", "_error", "_event", "label")

    def __init__(self, label: str = "future"):
        self._state = _PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()
        self.label = label

    # -- state transitions (called by the executor) --------------------

    def _mark_running(self) -> None:
        self._state = _RUNNING

    def _determine(self, value: Any) -> None:
        self._value = value
        self._state = _DETERMINED
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._state = _FAILED
        self._event.set()

    # -- programmer-facing ---------------------------------------------

    @property
    def determined(self) -> bool:
        return self._state in (_DETERMINED, _FAILED)

    def touch(self, timeout: Optional[float] = None) -> Any:
        """Await determination and return the value (paper's ``touch``)."""
        if not self._event.wait(timeout):
            raise GozerRuntimeError(f"touch: timed out awaiting {self.label}")
        if self._state == _FAILED:
            raise self._error
        return self._value

    def __repr__(self) -> str:
        return f"#<future {self.label} {self._state}>"

    # -- serialization --------------------------------------------------
    # A future pickles as its determined value (Section 4.1's rule that
    # persistence implies determination).  Pickling an undetermined
    # future blocks until it determines.

    def __getstate__(self):
        value = self.touch()
        return {"label": self.label, "value": value}

    def __setstate__(self, state):
        self._event = threading.Event()
        self.label = state["label"]
        self._error = None
        self._determine(state["value"])

    def __deepcopy__(self, memo):
        # Continuation capture deep-copies frames; by the capture rule
        # the future is already determined, so copy as determined.
        clone = GozerFuture(self.label)
        clone._determine(self.touch())
        memo[id(self)] = clone
        return clone


def force(value: Any) -> Any:
    """Return ``value``, touching it first if it is a future."""
    if isinstance(value, GozerFuture):
        return value.touch()
    return value


def force_all(values) -> list:
    return [force(v) for v in values]


class FutureExecutor:
    """Runs future computations; the GVM's ``ExecutorService``.

    ``submit`` takes a zero-argument thunk (already bound to a runtime)
    and returns a :class:`GozerFuture`.  Subclasses change *where* the
    thunk runs: threads here, load-balanced cluster slots in BlueBox's
    implementation, inline in the deterministic test executor.
    """

    def submit(self, thunk: Callable[[], Any], label: str = "future") -> GozerFuture:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ThreadPoolFutureExecutor(FutureExecutor):
    """Default executor: a shared thread pool, like the JVM's."""

    def __init__(self, max_workers: int = 8):
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="gozer-future")
        self._lock = threading.Lock()
        self._shutdown = False

    def submit(self, thunk: Callable[[], Any], label: str = "future") -> GozerFuture:
        future = GozerFuture(label)

        def run():
            exit_fiber_thread()  # background threads are not fiber threads
            future._mark_running()
            try:
                future._determine(thunk())
            except BaseException as exc:  # noqa: BLE001 - stored, re-raised at touch
                future._fail(exc)

        with self._lock:
            if self._shutdown:
                raise GozerRuntimeError("executor has been shut down")
            self._pool.submit(run)
        return future

    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._pool.shutdown(wait=True)


class SynchronousFutureExecutor(FutureExecutor):
    """Deterministic executor: runs the thunk immediately, inline.

    Used by tests and the discrete-event cluster, where wall-clock
    thread scheduling would break reproducibility.
    """

    def __init__(self):
        self.submitted = 0

    def submit(self, thunk: Callable[[], Any], label: str = "future") -> GozerFuture:
        self.submitted += 1
        future = GozerFuture(label)
        future._mark_running()
        # While the thunk runs it must observe background-thread
        # semantics (is-fiber-thread false), even though it runs inline.
        was_fiber = is_fiber_thread()
        exit_fiber_thread()
        try:
            future._determine(thunk())
        except BaseException as exc:  # noqa: BLE001
            future._fail(exc)
        finally:
            if was_fiber:
                enter_fiber_thread()
        return future


def find_futures(root: Any, _seen: Optional[Set[int]] = None) -> List[GozerFuture]:
    """Collect every :class:`GozerFuture` reachable from ``root``.

    Used by continuation capture to enforce the determination rule.
    Walks lists, tuples, dicts, sets, Env chains and GVM frames.
    """
    from .environment import Env
    from .frames import Frame, GozerFunction

    seen = _seen if _seen is not None else set()
    found: List[GozerFuture] = []
    stack = [root]
    while stack:
        value = stack.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        if isinstance(value, GozerFuture):
            found.append(value)
        elif isinstance(value, (list, tuple, set, frozenset)):
            stack.extend(value)
        elif isinstance(value, dict):
            stack.extend(value.keys())
            stack.extend(value.values())
        elif isinstance(value, Env):
            stack.extend(value.bindings.values())
            if value.parent is not None:
                stack.append(value.parent)
        elif isinstance(value, GozerFunction):
            if value.closure is not None:
                stack.append(value.closure)
        elif isinstance(value, Frame):
            stack.extend(value.stack)
            stack.append(value.env)
    return found
