"""The Gozer runtime: reader + compiler + VM + stdlib, tied together.

A :class:`Runtime` corresponds to one loaded Gozer *program*: it owns
the global environment (functions, macros, special variables), the
readtable (so Vinz can install the ``^`` reader macro, Listing 5), and
the future executor.  Fibers executing the program each get their own
:class:`~repro.gvm.vm.VM` but share the runtime.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from ..lang.compiler import Compiler
from ..lang.errors import CompileError, GozerRuntimeError
from ..lang.reader import ReadTable, Reader
from ..lang.symbols import Symbol
from .continuations import Continuation
from .environment import Env, GlobalEnvironment
from .frames import GozerFunction, GozerMacro
from .futures import (
    FutureExecutor,
    SynchronousFutureExecutor,
    ThreadPoolFutureExecutor,
    enter_fiber_thread,
)
from .vm import VM, Done, Yielded

_S = Symbol


class RuntimeClock:
    """The wall clock: ``(get-universal-time)`` reads the host time and
    ``(sleep n)`` really blocks — the standalone-interpreter default."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        time.sleep(max(0.0, float(seconds)))


class VirtualClock:
    """A simulated clock: time only moves when told to.

    ``now_fn`` ties the clock to an external time source (Vinz points
    it at the discrete-event kernel); ``sleep`` advances a local offset
    instead of blocking, so ``(sleep 3600)`` outside a fiber costs
    nothing real and stays deterministic.  ``slept`` accumulates the
    total seconds slept — what the regression tests assert on.
    """

    def __init__(self, start: float = 0.0,
                 now_fn: Optional[Callable[[], float]] = None):
        self.start = start
        self.now_fn = now_fn
        self.offset = 0.0
        self.slept = 0.0

    def now(self) -> float:
        base = self.now_fn() if self.now_fn is not None else self.start
        return base + self.offset

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.offset += seconds
        self.slept += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting it as a sleep."""
        self.offset += max(0.0, float(seconds))


class Runtime:
    """One loaded Gozer program and the machinery to run it."""

    def __init__(self, executor: Optional[FutureExecutor] = None,
                 readtable: Optional[ReadTable] = None,
                 clock=None):
        self.global_env = GlobalEnvironment()
        self.readtable = readtable.copy() if readtable else ReadTable()
        self.executor = executor if executor is not None else ThreadPoolFutureExecutor()
        #: the time source ``(get-universal-time)``/``(sleep n)`` use;
        #: real time by default, virtual under Vinz and in clock tests
        self.clock = clock if clock is not None else RuntimeClock()
        self.compiler = Compiler(self.global_env, apply_fn=self.apply)
        from ..lang import stdlib

        stdlib.install(self)

    # ------------------------------------------------------------------
    # reading / compiling
    # ------------------------------------------------------------------

    def reader(self) -> Reader:
        return Reader(self.readtable)

    def read(self, text: str) -> Any:
        return self.reader().read_string(text)

    def read_all(self, text: str) -> List[Any]:
        return self.reader().read_all(text)

    def compile(self, form: Any, name: str = "top-level"):
        return self.compiler.compile_toplevel(form, name=name)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def new_vm(self, allow_yield: bool = False) -> VM:
        vm = VM(self.global_env,
                future_submitter=self._submit_future,
                allow_yield=allow_yield)
        vm.clock = self.clock
        return vm

    def eval_string(self, text: str) -> Any:
        """Evaluate every form in ``text``; return the last value."""
        value = None
        for form in self.read_all(text):
            value = self.eval_form(form)
        return value

    #: alias matching Lisp naming
    load = eval_string

    def eval_file(self, path: str) -> Any:
        """Load a Gozer source file (conventionally ``*.gozer``)."""
        with open(path, "r", encoding="utf-8") as fh:
            return self.eval_string(fh.read())

    def eval_form(self, form: Any) -> Any:
        """Evaluate one top-level form.

        ``defmacro`` and top-level ``progn`` get special treatment so a
        macro defined earlier in a file is available to later forms —
        the behaviour every Lisp source file relies on.
        """
        if isinstance(form, list) and form and isinstance(form[0], Symbol):
            head = form[0].name
            if head == "defmacro":
                return self._eval_defmacro(form)
            if head == "progn":
                value = None
                for sub in form[1:]:
                    value = self.eval_form(sub)
                return value
        code = self.compile(form)
        result = self.new_vm().run_code(code)
        assert isinstance(result, Done)
        return result.value

    def _eval_defmacro(self, form: List[Any]) -> Any:
        if len(form) < 3 or not isinstance(form[1], Symbol):
            raise CompileError("defmacro needs (defmacro name (args) body...)", form)
        name = form[1]
        code = self.compiler.compile_function(f"macro:{name.name}", form[2], form[3:])
        expander = GozerFunction(code, None, name=f"macro:{name.name}")
        self.global_env.define_macro(name, GozerMacro(expander, name.name))
        return name

    def apply(self, fn: Any, args: List[Any]) -> Any:
        """Call a Gozer or host function to completion on a fresh VM."""
        if isinstance(fn, GozerFunction):
            return self.new_vm().call(fn, list(args))
        if callable(fn):
            return fn(*args)
        raise GozerRuntimeError(f"not callable: {fn!r}")

    call_function = apply

    # ------------------------------------------------------------------
    # fiber-style execution (used directly and by Vinz)
    # ------------------------------------------------------------------

    def start(self, code_or_text, env: Optional[Env] = None):
        """Run a program as a *fiber*: yields surface as ``Yielded``.

        Returns :class:`~repro.gvm.vm.Done` or
        :class:`~repro.gvm.vm.Yielded`.
        """
        if isinstance(code_or_text, str):
            forms = self.read_all(code_or_text)
            if not forms:
                return Done(None)
            *defs, last = forms
            for form in defs:
                self.eval_form(form)
            code = self.compile(last, name="fiber-main")
        else:
            code = code_or_text
        enter_fiber_thread()
        vm = self.new_vm(allow_yield=True)
        return vm.run_code(code, env=env)

    def resume(self, continuation: Continuation, value: Any = None):
        """Resume a fiber continuation on a fresh VM."""
        enter_fiber_thread()
        vm = self.new_vm(allow_yield=True)
        return vm.resume(continuation, value)

    # ------------------------------------------------------------------
    # futures
    # ------------------------------------------------------------------

    def _submit_future(self, thunk: GozerFunction, parent_vm: VM):
        label = f"future:{thunk.code.name}"
        return self.executor.submit(lambda: self.apply(thunk, []), label=label)

    def shutdown(self) -> None:
        self.executor.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def make_runtime(deterministic: bool = False, max_workers: int = 8) -> Runtime:
    """Build a runtime.

    ``deterministic=True`` uses the synchronous future executor (futures
    determine immediately, in submission order) — the right choice for
    tests and the discrete-event cluster.
    """
    executor = SynchronousFutureExecutor() if deterministic \
        else ThreadPoolFutureExecutor(max_workers=max_workers)
    return Runtime(executor=executor)
