"""The conformance oracles: four independent ways to run one program.

* :func:`run_vm`        — the bytecode VM (the *baseline* oracle).
* :func:`run_vm_pickle` — the VM, but every captured continuation is
  forced through a pickle round-trip before resuming (the persistence
  path Vinz migration depends on).
* :func:`run_tree`      — the tree-walking reference interpreter on the
  sequentialized forms; higher-order stdlib builtins that are pure but
  happen to be implemented against the VM run through a scratch VM.
* :func:`run_stepwise`  — the VM with capture + pickle + restore forced
  at instruction boundaries (stride 1 == *every* boundary), asserting
  bit-equal results and conservation of the instruction count.
* :func:`run_vinz`      — a distributed Vinz execution under a seeded
  survivable chaos plan with event-sourced history and
  ``recovery="replay"``, cross-checked by deterministic replay.

Every oracle returns an :class:`Outcome`; the executor compares them.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..gvm.conditions import (GozerCondition, UnhandledConditionError,
                              coerce_condition)
from ..gvm.continuations import capture, materialize
from ..gvm.environment import DynamicBindings
from ..gvm.interpreter import (ContinuationsUnsupported, TreeInterpreter,
                               force, force_all)
from ..gvm.runtime import Done, Yielded, make_runtime
from ..gvm.vm import ControlFlowSignal
from ..lang.printer import print_form
from .grammar import SAFE_VM_FNS, GenProgram

# outcome kinds -----------------------------------------------------------
VALUE = "value"            # ran to completion, comparable result
CONDITION = "condition"    # signalled an unhandled condition
UNSUPPORTED = "unsupported"  # engine cannot run this class of program
HANG = "hang"              # exceeded the resume/deadline budget
ENGINE_ERROR = "engine-error"  # the engine itself failed (a real bug)


@dataclass
class Outcome:
    """What one oracle observed for one program."""

    kind: str
    value: Any = None
    ctype: Optional[str] = None
    printed: str = ""
    detail: str = ""
    #: printed yield values, in order (suspend-stratum comparisons)
    yields: Tuple[str, ...] = ()

    @classmethod
    def of_value(cls, value: Any, yields: Tuple[str, ...] = ()) -> "Outcome":
        return cls(kind=VALUE, value=value, printed=print_form(value),
                   yields=yields)

    @classmethod
    def of_exception(cls, exc: BaseException,
                     yields: Tuple[str, ...] = ()) -> "Outcome":
        if isinstance(exc, UnhandledConditionError):
            cond = exc.condition
            return cls(kind=CONDITION, ctype=cond.condition_type,
                       detail=str(cond), yields=yields)
        if isinstance(exc, GozerCondition):
            return cls(kind=CONDITION, ctype=exc.condition_type,
                       detail=str(exc), yields=yields)
        if isinstance(exc, (RecursionError, MemoryError,
                            pickle.PicklingError, AttributeError)):
            return cls(kind=ENGINE_ERROR,
                       detail=f"{type(exc).__name__}: {exc}", yields=yields)
        cond = coerce_condition(exc)
        return cls(kind=CONDITION, ctype=cond.condition_type,
                   detail=f"{type(exc).__name__}: {exc}", yields=yields)

    def agrees_with(self, other: "Outcome", strict_ctype: bool = True,
                    compare_yields: bool = False) -> bool:
        if self.kind != other.kind:
            return False
        if compare_yields and self.yields != other.yields:
            return False
        if self.kind == VALUE:
            return self.printed == other.printed
        if self.kind == CONDITION:
            return (not strict_ctype) or self.ctype == other.ctype
        return True  # hang == hang, unsupported == unsupported

    def describe(self) -> str:
        if self.kind == VALUE:
            return f"value {self.printed}"
        if self.kind == CONDITION:
            return f"condition {self.ctype} ({self.detail})"
        return f"{self.kind} {self.detail}".strip()


# ---------------------------------------------------------------------------
# VM oracle (baseline) and its pickle-roundtrip variant
# ---------------------------------------------------------------------------

def run_vm(program: GenProgram, pickle_roundtrip: bool = False,
           max_resumes: int = 64) -> Outcome:
    """Run the sequentialized program on the bytecode VM.

    Suspend-stratum programs yield; each yield value is recorded and
    answered from the program's cyclic ``feeds`` schedule.  With
    ``pickle_roundtrip`` the continuation crosses ``pickle`` before
    every resume — exactly what fiber migration does to it.
    """
    rt = make_runtime()
    yields: List[str] = []
    feeds = program.feeds or (1,)
    try:
        result = rt.start(program.sequential_source)
        resumes = 0
        while isinstance(result, Yielded):
            yields.append(print_form(result.value))
            if resumes >= max_resumes:
                return Outcome(kind=HANG, yields=tuple(yields),
                               detail=f">{max_resumes} resumes")
            continuation = result.continuation
            if pickle_roundtrip:
                continuation = pickle.loads(pickle.dumps(continuation))
            result = rt.resume(continuation, feeds[resumes % len(feeds)])
            resumes += 1
        return Outcome.of_value(result.value, yields=tuple(yields))
    except Exception as exc:  # noqa: BLE001 - outcomes, not crashes
        return Outcome.of_exception(exc, yields=tuple(yields))


def run_vm_pickle(program: GenProgram, max_resumes: int = 64) -> Outcome:
    return run_vm(program, pickle_roundtrip=True, max_resumes=max_resumes)


# ---------------------------------------------------------------------------
# tree-interpreter oracle
# ---------------------------------------------------------------------------

class ConformanceTreeInterpreter(TreeInterpreter):
    """Tree interpreter that may call *pure* VM-hosted builtins.

    ``mapcar``/``reduce``/``sort``/… are implemented against the VM's
    calling convention but are semantically pure; routing them through
    a scratch VM lets the reference interpreter cover far more of the
    generated grammar.  The scratch VM can call back into tree-land
    because :class:`~repro.gvm.interpreter.TreeFunction` is a plain
    callable.  Builtins that need the *live* condition/future machinery
    (``error``, ``invoke-restart``, ``pcall``, …) still raise, which
    the executor classifies via the feature analysis.
    """

    def __init__(self, global_env, apply_fn=None, scratch_vm=None):
        super().__init__(global_env, apply_fn=apply_fn)
        self._scratch_vm = scratch_vm
        self._safe_vm_fns = self._resolve_safe_fns()

    @staticmethod
    def _resolve_safe_fns():
        from ..lang import stdlib

        safe = set()
        for key, fn in stdlib._VM_REGISTRY.items():
            name = key.name if hasattr(key, "name") else str(key)
            if name in SAFE_VM_FNS:
                safe.add(fn)
        return safe

    def _apply(self, fn: Any, args: List[Any]) -> Any:
        target = force(fn)
        if callable(target) and getattr(target, "needs_vm", False) \
                and target in self._safe_vm_fns \
                and self._scratch_vm is not None:
            return target(self._scratch_vm, *force_all(args))
        return super()._apply(fn, args)


def run_tree(program: GenProgram) -> Outcome:
    """Run the sequentialized program on the reference interpreter."""
    rt = make_runtime()
    scratch = rt.new_vm(allow_yield=False)
    interp = ConformanceTreeInterpreter(rt.global_env, apply_fn=rt.apply,
                                        scratch_vm=scratch)
    try:
        value = None
        for form in rt.read_all(program.sequential_source):
            value = interp.eval(form)
        return Outcome.of_value(value)
    except ContinuationsUnsupported as exc:
        return Outcome(kind=UNSUPPORTED, detail=str(exc))
    except Exception as exc:  # noqa: BLE001
        return Outcome.of_exception(exc)


# ---------------------------------------------------------------------------
# stepwise capture/restore oracle
# ---------------------------------------------------------------------------

class _StepPause(ControlFlowSignal):
    """Raised by the instruction hook to stop the VM *between* two
    instructions; subclassing ``ControlFlowSignal`` makes the dispatch
    loop re-raise it without routing it into the condition system, and
    because the hook fires before ``pc``/``instruction_count`` advance,
    the paused instruction re-executes exactly once after restore."""


def stepwise_safe(program: GenProgram) -> bool:
    """Whether every intermediate VM state of the program pickles.

    Futures are excluded conservatively: a stride-1 pause can catch a
    not-yet-touched :class:`~repro.gvm.futures.GozerFuture` — which may
    hold host synchronization state — live in a frame.  (Intrinsic
    references and ``constantly`` results used to be unpicklable local
    closures too; the fuzzer surfaced that and they are now module
    level, see ``repro.lang.stdlib``.)
    """
    from .grammar import F_FUTURE

    return F_FUTURE not in program.analysis.features


@dataclass
class StepwiseResult:
    outcome: Outcome
    segments: int
    instructions: int
    baseline_instructions: int

    @property
    def counts_agree(self) -> bool:
        return self.instructions == self.baseline_instructions


def run_stepwise(program: GenProgram, stride: int = 1,
                 max_segments: int = 200_000) -> StepwiseResult:
    """Run on the VM, forcing capture + pickle + restore every ``stride``
    instruction boundaries (at top-level depth).

    Returns the final outcome plus the instruction accounting: the sum
    of instructions over all resumed segments must equal the count of
    one uninterrupted run — capture is transparent to cost, not just to
    the result (the satellite-3 property).
    """
    rt = make_runtime()
    forms = rt.read_all(program.sequential_source)
    for form in forms[:-1]:
        rt.eval_form(form)
    code = rt.compile(forms[-1], name="conf-step")

    # baseline: one uninterrupted run on an identically-prepared runtime
    rt_base = make_runtime()
    for form in rt_base.read_all(program.sequential_source)[:-1]:
        rt_base.eval_form(form)
    base_code = rt_base.compile(
        rt_base.read_all(program.sequential_source)[-1], name="conf-step")
    vm_base = rt_base.new_vm(allow_yield=True)
    try:
        base_result = vm_base.run_code(base_code)
        base_outcome = Outcome.of_value(base_result.value) \
            if isinstance(base_result, Done) \
            else Outcome(kind=HANG, detail="baseline yielded")
    except Exception as exc:  # noqa: BLE001
        base_outcome = Outcome.of_exception(exc)
    baseline_count = vm_base.instruction_count

    segments = 0
    total = 0

    def install_hook(vm) -> None:
        start = vm.instruction_count

        def hook(frame, op, arg):
            if vm._depth == 1 and vm.instruction_count - start >= stride:
                raise _StepPause()

        vm.instruction_hook = hook

    vm = rt.new_vm(allow_yield=True)
    install_hook(vm)
    pending: Optional[Callable[[], Any]] = lambda: vm.run_code(code)
    outcome: Optional[Outcome] = None
    while outcome is None:
        try:
            result = pending()
            if isinstance(result, Done):
                outcome = Outcome.of_value(result.value)
            else:  # a real (yield): treat like run_vm with default feed
                outcome = Outcome(kind=HANG, detail="stepwise yielded")
        except _StepPause:
            segments += 1
            total += vm.instruction_count
            if segments > max_segments:
                outcome = Outcome(kind=HANG,
                                  detail=f">{max_segments} segments")
                break
            continuation = capture(vm.frames, vm.handlers, vm.restarts,
                                   vm.dynamics.snapshot(), label="step")
            continuation = pickle.loads(pickle.dumps(continuation))
            frames, handlers, restarts, dynamics = materialize(continuation)
            vm = rt.new_vm(allow_yield=True)
            vm.handlers = handlers
            vm.restarts = restarts
            vm.dynamics = DynamicBindings()
            for name, dyn_value in dynamics.items():
                vm.dynamics.push(name, dyn_value)
            vm.frames = frames
            install_hook(vm)
            pending = lambda: vm._run_top(None)  # noqa: E731
        except Exception as exc:  # noqa: BLE001
            outcome = Outcome.of_exception(exc)
    total += vm.instruction_count
    if not outcome.agrees_with(base_outcome):
        outcome = Outcome(kind=ENGINE_ERROR,
                          detail=f"stepwise {outcome.describe()} != "
                                 f"baseline {base_outcome.describe()}")
    return StepwiseResult(outcome=outcome, segments=segments,
                          instructions=total,
                          baseline_instructions=baseline_count)


# ---------------------------------------------------------------------------
# distributed Vinz oracle
# ---------------------------------------------------------------------------

#: the survivable fault envelope (mirrors tests/test_properties.py):
#: any plan drawn from it must leave every task COMPLETED and correct.
def survivable_plan(rng: random.Random):
    from ..faults.plan import (CRASH, DELAY, DROP, DUPLICATE, FaultPlan,
                               MessageFault, NodeFault, StoreFault)

    faults: List[Any] = []
    for _ in range(rng.randint(0, 3)):
        roll = rng.random()
        if roll < 0.45:
            faults.append(MessageFault(
                action=rng.choice([DROP, DUPLICATE, DELAY]),
                nth=rng.randint(1, 6), count=rng.randint(1, 2),
                delay=rng.uniform(0.05, 1.0)))
        elif roll < 0.8:
            faults.append(StoreFault(
                action="fail-write",
                key_prefix=rng.choice(["", "fiber-state/", "fiber-thunk/"]),
                nth=rng.randint(1, 6), count=rng.randint(1, 2)))
        else:
            faults.append(NodeFault(
                action=CRASH, at=rng.uniform(0.1, 2.0),
                restart_after=rng.uniform(0.5, 2.0)))
    return FaultPlan(faults, name="conformance-chaos")


def run_vinz(program: GenProgram, seed: int = 0, chaos: bool = True,
             deadline: float = 5_000.0) -> Outcome:
    """Run the program as a distributed Vinz workflow.

    The body becomes ``(defun main (params) ...)``; the task runs on a
    3-node simulated cluster with event-sourced history, replay-based
    crash recovery and (optionally) a seeded chaos plan drawn from the
    survivable envelope.  A completed task is additionally re-verified
    with :meth:`~repro.vinz.api.VinzEnvironment.replay_task` — a replay
    divergence is an engine error even when the value agrees.
    """
    from ..faults.injector import FaultInjector
    from ..history import ReplayDivergenceError
    from ..vinz.api import VinzEnvironment, WorkflowError
    from ..vinz.task import COMPLETED

    rng = random.Random(seed ^ 0xC0FFEE)
    try:
        env = VinzEnvironment(nodes=3, seed=seed, trace=True,
                              history="on", recovery="replay")
        env.deploy_workflow("Conformance", program.vinz_source,
                            spawn_limit=3)
        if chaos:
            FaultInjector(seed, survivable_plan(rng)).install(env)
        task_id = env.start("Conformance", params=[])
        try:
            task = env.wait_for_task(
                task_id, deadline=env.cluster.kernel.now + deadline)
        except TimeoutError as exc:
            return Outcome(kind=HANG, detail=str(exc))
        if task.status == COMPLETED:
            try:
                env.replay_task(task_id)
            except ReplayDivergenceError as exc:
                return Outcome(kind=ENGINE_ERROR,
                               detail=f"replay divergence: {exc}")
            return Outcome.of_value(task.result)
        return Outcome(kind=CONDITION, ctype="error",
                       detail=str(task.error or task.status))
    except WorkflowError as exc:
        return Outcome(kind=CONDITION, ctype="error",
                       detail=f"{exc.qname}: {exc.fault_message}")
    except Exception as exc:  # noqa: BLE001
        return Outcome.of_exception(exc)
