"""Multi-oracle differential execution with divergence classification.

The executor runs one :class:`~repro.conformance.grammar.GenProgram`
through every oracle that legally applies, compares the outcomes
against the VM baseline, and separates *classified* skips (the tree
interpreter cannot run continuations — the paper's own argument for
compiling to bytecode) from *unclassified* divergences (real bugs).

Oracle matrix (see docs/conformance.md):

===========  =====  ==========  =======  ==============
stratum      vm     vm-pickle   tree     vinz
===========  =====  ==========  =======  ==============
pure         base   yes         yes*     sampled
suspend      base   yes         skip     skip (raw yield)
dist         base   yes (seq)   yes*     yes (distributed)
===========  =====  ==========  =======  ==============

``*`` unless the sequentialized form uses a tree-unsupported feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .grammar import (DIST, SUSPEND, TREE_UNSUPPORTED, VINZ_UNSUPPORTED,
                      GenProgram)
from .oracles import (ENGINE_ERROR, Outcome, run_tree, run_vinz, run_vm,
                      run_vm_pickle)

BASELINE = "vm"
ORACLES = ("vm", "vm-pickle", "tree", "vinz")


@dataclass
class Divergence:
    """One oracle disagreeing with the baseline on one program."""

    oracle: str
    baseline: Outcome
    observed: Outcome
    program: GenProgram

    def describe(self) -> str:
        return (f"[{self.program.name}] {self.oracle} saw "
                f"{self.observed.describe()} but {BASELINE} saw "
                f"{self.baseline.describe()}")


@dataclass
class ProgramVerdict:
    program: GenProgram
    outcomes: Dict[str, Outcome] = field(default_factory=dict)
    skips: Dict[str, str] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


class DifferentialExecutor:
    """Runs programs through the oracle matrix and classifies results.

    ``vinz_every`` samples the (comparatively expensive) distributed
    oracle for pure-stratum programs: every Nth pure program also runs
    under Vinz.  Dist-stratum programs always do — they exist for it.
    ``chaos`` arms the seeded survivable fault plan on the Vinz runs.
    """

    def __init__(self, vinz_every: int = 10, chaos: bool = True,
                 metrics=None, max_resumes: int = 64):
        self.vinz_every = max(1, vinz_every)
        self.chaos = chaos
        self.metrics = metrics
        self.max_resumes = max_resumes

    # -- classification ------------------------------------------------

    def plan_skips(self, program: GenProgram) -> Dict[str, str]:
        """Expected inapplicabilities, decided *before* running."""
        skips: Dict[str, str] = {}
        seq_features = program.sequential_features
        tree_blockers = seq_features & TREE_UNSUPPORTED
        if tree_blockers:
            skips["tree"] = "tree:" + ",".join(sorted(tree_blockers))
        if program.features & VINZ_UNSUPPORTED:
            skips["vinz"] = "vinz:raw-yield"
        elif program.stratum != DIST and \
                (program.index or 0) % self.vinz_every != 0:
            skips["vinz"] = "vinz:not-sampled"
        return skips

    # -- execution -----------------------------------------------------

    def run(self, program: GenProgram,
            vinz_seed: Optional[int] = None) -> ProgramVerdict:
        verdict = ProgramVerdict(program=program,
                                 skips=self.plan_skips(program))
        base = run_vm(program, max_resumes=self.max_resumes)
        verdict.outcomes["vm"] = base
        self._count("conformance.oracle.vm." + base.kind)

        pickled = run_vm_pickle(program, max_resumes=self.max_resumes)
        verdict.outcomes["vm-pickle"] = pickled
        self._count("conformance.oracle.vm-pickle." + pickled.kind)
        if not base.agrees_with(pickled, compare_yields=True):
            verdict.divergences.append(
                Divergence("vm-pickle", base, pickled, program))

        if "tree" not in verdict.skips:
            tree = run_tree(program)
            verdict.outcomes["tree"] = tree
            self._count("conformance.oracle.tree." + tree.kind)
            if not base.agrees_with(tree):
                verdict.divergences.append(
                    Divergence("tree", base, tree, program))

        if "vinz" not in verdict.skips:
            seed = vinz_seed if vinz_seed is not None else \
                ((program.seed or 0) * 7919 + (program.index or 0))
            vinz = run_vinz(program, seed=seed, chaos=self.chaos)
            verdict.outcomes["vinz"] = vinz
            self._count("conformance.oracle.vinz." + vinz.kind)
            # messages and qnames legitimately differ across the
            # workflow boundary; value outcomes must agree exactly
            if not base.agrees_with(vinz, strict_ctype=False):
                verdict.divergences.append(
                    Divergence("vinz", base, vinz, program))

        if base.kind == ENGINE_ERROR:
            verdict.divergences.append(
                Divergence("vm", base, base, program))
        self._count("conformance.programs")
        if verdict.divergences:
            self._count("conformance.divergences",
                        len(verdict.divergences))
        return verdict

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)
