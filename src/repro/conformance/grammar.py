"""Seeded, grammar-based Gozer program generator.

The generator emits :class:`GenProgram` values: a prelude of
definitions plus one main expression, drawn from a weighted grammar
over the compiler's special forms, the core macros, the stdlib
builtins, the condition system, futures, continuations and the Vinz
distribution macros (``for-each``/``parallel``/task variables).

Programs are grouped into three *strata* that decide which oracles can
legally run them (see docs/conformance.md):

* ``pure``    — no suspension points; every oracle applies.
* ``suspend`` — contains ``yield``/``push-cc``; the tree interpreter
  cannot run these (the paper's Section 4.1 argument) and a raw
  ``yield`` under Vinz becomes an ``await`` descriptor that is never
  answered, so only the VM oracles apply.
* ``dist``    — uses ``for-each``/``parallel``/task variables; Vinz
  runs the program distributed while the VM/tree oracles run the
  :func:`sequentialize` rewriting.

Termination is by construction: every loop the generator emits is a
bounded counting loop, recursion depth is bounded by the fuel budget,
and fan-out lists carry at most a handful of elements.

Determinism is by construction too: program ``i`` of seed ``s`` is a
pure function of ``(s, i)`` — the property the corpus reproduction
instructions in docs/conformance.md rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..lang.printer import print_form
from ..lang.symbols import Keyword, Symbol

_S = Symbol
_K = Keyword

# strata ------------------------------------------------------------------
PURE = "pure"
SUSPEND = "suspend"
DIST = "dist"

# features (drive per-oracle classification) ------------------------------
F_SUSPEND = "suspend"
F_FUTURE = "future"
F_DIST = "distributed"
F_TASKVAR = "taskvar"
F_SPECIAL_VARS = "special-vars"
F_CONDITIONS = "conditions"
F_HOST = "host-interop"
F_DECLARE = "declare-the"
F_FANCY = "fancy-lambda"

#: features the tree-walking reference interpreter cannot evaluate; a
#: program whose *sequentialized* form carries one of these is expected
#: to diverge on the tree path and is classified, not flagged.
TREE_UNSUPPORTED: FrozenSet[str] = frozenset({
    F_SUSPEND, F_FUTURE, F_DIST, F_TASKVAR, F_SPECIAL_VARS,
    F_CONDITIONS, F_HOST, F_DECLARE, F_FANCY,
})

#: features that make a program unrunnable as a Vinz workflow: a raw
#: ``(yield v)`` is interpreted by the fiber scheduler as an ``await``
#: descriptor no service will ever answer.
VINZ_UNSUPPORTED: FrozenSet[str] = frozenset({F_SUSPEND})

#: builtins whose calls cannot route through the tree interpreter's
#: scratch VM (they need the live handler/restart/future machinery of
#: the *calling* VM, which the tree interpreter does not maintain).
CONDITION_FNS = frozenset({
    "signal", "error", "warn", "invoke-restart", "find-restart",
    "compute-restarts",
})
FUTURE_FNS = frozenset({"pcall", "future-p", "futurep", "determined-p"})

#: higher-order stdlib builtins that are pure given pure arguments: the
#: conformance tree interpreter may run these through a scratch VM.
SAFE_VM_FNS = frozenset({
    "mapcar", "map", "mapc", "mapcan", "filter", "remove-if",
    "remove-if-not", "reduce", "find-if", "position-if", "count-if",
    "every", "some", "sort", "funcall", "apply",
})


# ---------------------------------------------------------------------------
# registries (resolved lazily to avoid import cycles at module load)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def special_form_names() -> FrozenSet[str]:
    from ..lang.compiler import Compiler

    return frozenset(Compiler(None)._special_forms)


@lru_cache(maxsize=1)
def core_macro_names() -> FrozenSet[str]:
    from ..lang.macros import CORE_MACROS

    names = {sym.name for sym in CORE_MACROS}
    # the Vinz distribution macros, installed per WorkflowService
    names.update({"for-each", "parallel", "deftaskvar"})
    return frozenset(names)


@lru_cache(maxsize=1)
def builtin_names() -> FrozenSet[str]:
    from ..lang import stdlib

    out = set()
    for registry in (stdlib._REGISTRY, stdlib._VM_REGISTRY):
        for key in registry:
            out.add(key.name if isinstance(key, Symbol) else str(key))
    return frozenset(out)


# ---------------------------------------------------------------------------
# surface analysis: features + coverage marks from an AST
# ---------------------------------------------------------------------------

_FEATURE_BY_HEAD = {
    "yield": F_SUSPEND, "push-cc": F_SUSPEND,
    "future": F_FUTURE,
    "for-each": F_DIST, "parallel": F_DIST,
    "deftaskvar": F_TASKVAR,
    "%get-task-var": F_TASKVAR, "%set-task-var": F_TASKVAR,
    "defvar": F_SPECIAL_VARS, "defparameter": F_SPECIAL_VARS,
    "handler-bind": F_CONDITIONS, "restart-case": F_CONDITIONS,
    "unwind-protect": F_CONDITIONS, "handler-case": F_CONDITIONS,
    "ignore-errors": F_CONDITIONS, "with-simple-restart": F_CONDITIONS,
    "assert": F_CONDITIONS,
    "declare": F_DECLARE, "the": F_DECLARE,
    ".": F_HOST, "%": F_HOST,
}

_LAMBDA_HEADS = frozenset({"lambda", "fn"})


@dataclass
class Analysis:
    """Surface-walk result: oracle-relevant features + coverage marks.

    Marks are namespaced strings: ``sf:<name>`` for special forms,
    ``macro:<name>`` for core/distribution macros, ``fn:<name>`` for
    stdlib builtin references (head position or ``#'name``).
    """

    features: FrozenSet[str]
    marks: FrozenSet[str]


def analyze(forms: Sequence[Any]) -> Analysis:
    """Walk surface forms (pre-macroexpansion) for features and marks."""
    features: Set[str] = set()
    marks: Set[str] = set()
    specials = special_form_names()
    macros = core_macro_names()
    builtins = builtin_names()

    def note_fn(name: str) -> None:
        if name in builtins:
            marks.add("fn:" + name)
        if name in CONDITION_FNS:
            features.add(F_CONDITIONS)
        if name in FUTURE_FNS:
            features.add(F_FUTURE)
        if name in ("%get-task-var", "%set-task-var"):
            features.add(F_TASKVAR)

    def walk_params(params: Any) -> None:
        if not isinstance(params, list):
            return
        for p in params:
            if isinstance(p, Symbol) and p.name.startswith("&"):
                features.add(F_FANCY)
            elif isinstance(p, list):  # (name default) — optional/key
                for sub in p[1:]:
                    walk(sub)

    def walk(form: Any) -> None:
        if not isinstance(form, list) or not form:
            return
        head = form[0]
        if not isinstance(head, Symbol):
            for item in form:
                walk(item)
            return
        name = head.name
        feature = _FEATURE_BY_HEAD.get(name)
        if feature is not None:
            features.add(feature)
        if name in specials:
            marks.add("sf:" + name)
        elif name in macros:
            marks.add("macro:" + name)
        else:
            note_fn(name)
        if name == "quote":
            return  # quoted data is not code
        if name in _LAMBDA_HEADS and len(form) >= 2:
            walk_params(form[1])
            for body_form in form[2:]:
                walk(body_form)
            return
        if name == "defun" and len(form) >= 3:
            walk_params(form[2])
            for body_form in form[3:]:
                walk(body_form)
            return
        if name == "function" and len(form) == 2 and \
                isinstance(form[1], Symbol):
            note_fn(form[1].name)
            return
        for item in form[1:]:
            walk(item)

    for top in forms:
        walk(top)
    return Analysis(frozenset(features), frozenset(marks))


# ---------------------------------------------------------------------------
# sequentialize: the dist -> plain-Gozer rewriting
# ---------------------------------------------------------------------------

def sequentialize(form: Any) -> Any:
    """Rewrite the distributed forms into their sequential equivalents.

    * ``(for-each (v in seq . opts) body...)`` -> ``(mapcar (lambda (v)
      body...) seq)`` — for-each collects child-fiber results in item
      order, which is exactly mapcar's contract.
    * ``(parallel f1 .. fn)`` -> ``(list f1 .. fn)``.
    * ``(deftaskvar v [doc] [default])`` -> ``(setq v default)`` — a
      plain global, matching the single-task/single-writer discipline
      the generator enforces for task variables.
    * ``(%get-task-var 'v^)`` -> ``v`` and ``(%set-task-var 'v^ e)``
      -> ``(setq v e)``.

    Non-distributed forms pass through structurally unchanged.
    """
    if not isinstance(form, list) or not form:
        return form
    head = form[0]
    if isinstance(head, Symbol):
        name = head.name
        if name == "quote":
            return form
        if name == "for-each" and len(form) >= 2 and \
                isinstance(form[1], list) and len(form[1]) >= 3:
            var, _in, seq = form[1][:3]
            body = [sequentialize(f) for f in form[2:]]
            return [_S("mapcar"), [_S("lambda"), [var], *body],
                    sequentialize(seq)]
        if name == "parallel":
            return [_S("list"), *[sequentialize(f) for f in form[1:]]]
        if name == "deftaskvar" and len(form) >= 2:
            default = None
            for item in form[2:]:
                if not isinstance(item, str):
                    default = item
            return [_S("setq"), _plain_taskvar(form[1]),
                    sequentialize(default)]
        if name == "%get-task-var" and len(form) == 2:
            return _plain_taskvar(form[1])
        if name == "%set-task-var" and len(form) == 3:
            return [_S("setq"), _plain_taskvar(form[1]),
                    sequentialize(form[2])]
    return [sequentialize(item) for item in form]


def _plain_taskvar(quoted: Any) -> Symbol:
    """``(quote counter^)`` -> the global symbol ``counter``."""
    sym = quoted
    if isinstance(quoted, list) and len(quoted) == 2 and \
            isinstance(quoted[0], Symbol) and quoted[0].name == "quote":
        sym = quoted[1]
    if isinstance(sym, Symbol):
        return _S(sym.name.strip("^"))
    raise ValueError(f"not a task-var designator: {quoted!r}")


# ---------------------------------------------------------------------------
# the program value
# ---------------------------------------------------------------------------

@dataclass
class GenProgram:
    """One generated (or corpus-loaded) conformance program."""

    prelude: List[Any] = field(default_factory=list)
    body: Any = None
    feeds: Tuple[int, ...] = ()
    stratum: str = PURE
    name: str = "anonymous"
    seed: Optional[int] = None
    index: Optional[int] = None
    note: str = ""

    @property
    def forms(self) -> List[Any]:
        return list(self.prelude) + [self.body]

    @property
    def source(self) -> str:
        return "\n".join(print_form(f) for f in self.forms)

    @property
    def sequential_forms(self) -> List[Any]:
        return [sequentialize(f) for f in self.forms]

    @property
    def sequential_source(self) -> str:
        return "\n".join(print_form(f) for f in self.sequential_forms)

    @property
    def vinz_source(self) -> str:
        """The program as a Vinz workflow: the body becomes ``main``."""
        forms = list(self.prelude) + [
            [_S("defun"), _S("main"), [_S("params")], self.body]]
        return "\n".join(print_form(f) for f in forms)

    @property
    def analysis(self) -> Analysis:
        return analyze(self.forms)

    @property
    def features(self) -> FrozenSet[str]:
        return self.analysis.features

    @property
    def sequential_features(self) -> FrozenSet[str]:
        return analyze(self.sequential_forms).features


# ---------------------------------------------------------------------------
# builtin call templates
# ---------------------------------------------------------------------------
#
# Each template is (name, result-type, arg-tokens).  Tokens:
#   i   int expression          p   positive int literal (1..6)
#   n   small nat literal 0..3  b   bool expression
#   L   list-of-int expression  Lf  freshly-constructed list (mutable)
#   s   string expression       a   any-data expression
#   k   keyword literal         S   quoted symbol literal
#   f1i int->int function       f1b int->bool predicate
#   f2i (int,int)->int function h   fresh hash-table expression
#   c   condition expression    chr character expression
#   sl  list-of-strings         pl  literal plist       al  literal alist
#   :x  the keyword :x itself   "…" the literal string
#
# Result types: i int, b bool, L list, s string, a any, k keyword.

TEMPLATES: List[Tuple[str, str, Tuple[str, ...]]] = [
    # arithmetic
    ("+", "i", ("i", "i")), ("+", "i", ("i", "i", "i")),
    ("-", "i", ("i", "i")), ("*", "i", ("i", "i")),
    ("/", "a", ("i", "p")),
    ("1+", "i", ("i",)), ("1-", "i", ("i",)),
    ("abs", "i", ("i",)), ("min", "i", ("i", "i")),
    ("max", "i", ("i", "i")), ("mod", "i", ("i", "p")),
    ("rem", "i", ("i", "p")), ("gcd", "i", ("i", "i")),
    ("expt", "i", ("n", "n")),
    ("floor", "i", ("i", "p")), ("ceiling", "i", ("i", "p")),
    ("round", "i", ("i", "p")), ("truncate", "i", ("i", "p")),
    ("sqrt", "a", ("p",)), ("log", "a", ("p",)),
    ("clamp", "i", ("i", "n", "p")),
    ("evenp", "b", ("i",)), ("oddp", "b", ("i",)),
    ("zerop", "b", ("i",)), ("plusp", "b", ("i",)),
    ("minusp", "b", ("i",)),
    ("numberp", "b", ("a",)), ("integerp", "b", ("a",)),
    ("floatp", "b", ("a",)),
    ("parse-integer", "i", ('"-42"',)),
    ("parse-float", "a", ('"2.5"',)),
    ("number-to-string", "s", ("i",)),
    # comparison / equality / logic
    ("<", "b", ("i", "i")), ("<=", "b", ("i", "i")),
    (">", "b", ("i", "i")), (">=", "b", ("i", "i")),
    ("=", "b", ("i", "i")), ("/=", "b", ("i", "i")),
    ("eq", "b", ("k", "k")), ("eql", "b", ("i", "i")),
    ("equal", "b", ("a", "a")), ("equalp", "b", ("a", "a")),
    ("not", "b", ("b",)), ("null", "b", ("a",)),
    ("atom", "b", ("a",)), ("booleanp", "b", ("a",)),
    # lists
    ("list", "L", ("i", "i", "i")), ("list*", "L", ("i", "L")),
    ("cons", "L", ("i", "L")), ("car", "a", ("L",)),
    ("cdr", "L", ("L",)), ("first", "a", ("L",)),
    ("second", "a", ("L",)), ("third", "a", ("L",)),
    ("rest", "L", ("L",)), ("last", "L", ("L",)),
    ("butlast", "L", ("L",)), ("nth", "a", ("n", "L")),
    ("nthcdr", "L", ("n", "L")), ("append", "L", ("L", "L")),
    ("append!", "L", ("Lf", "i")), ("copy-list", "L", ("L",)),
    ("reverse", "L", ("L",)), ("length", "i", ("L",)),
    ("elt", "a", ("Lf", "n")), ("subseq", "L", ("L", "n")),
    ("member", "L", ("i", "L")), ("position", "a", ("i", "L")),
    ("count", "i", ("i", "L")), ("remove", "L", ("i", "L")),
    ("remove-duplicates", "L", ("L",)), ("find", "a", ("i", "L")),
    ("range", "L", ("p",)), ("range", "L", ("n", "p")),
    ("to-list", "L", ("L",)), ("consp", "b", ("a",)),
    ("listp", "b", ("a",)), ("vector", "L", ("i", "i")),
    ("set-car!", "a", ("Lf", "i")), ("set-cdr!", "a", ("Lf", "L")),
    ("set-nth!", "a", ("n", "Lf", "i")),
    ("assoc", "a", ("al", "n")), ("getf", "a", ("pl", ":a")),
    # higher-order (scratch-VM-safe in the tree oracle)
    ("mapcar", "L", ("f1i", "L")), ("map", "L", ("f1i", "L")),
    ("mapc", "L", ("f1i", "L")), ("mapcan", "L", ("f1L", "L")),
    ("filter", "L", ("f1b", "L")), ("remove-if", "L", ("f1b", "L")),
    ("remove-if-not", "L", ("f1b", "L")),
    ("reduce", "i", ("f2i", "L", "i")),
    ("find-if", "a", ("f1b", "L")), ("position-if", "a", ("f1b", "L")),
    ("count-if", "i", ("f1b", "L")), ("every", "b", ("f1b", "L")),
    ("some", "a", ("f1b", "L")),
    ("sort", "L", ("L",)), ("sort", "L", ("L", "f2b")),
    ("funcall", "i", ("f1i", "i")), ("apply", "i", ("f2i", "i", "L1")),
    ("identity", "a", ("a",)), ("functionp", "b", ("f1i",)),
    ("funcall", "a", ("constantly-a",)),
    ("touch", "a", ("a",)),
    # strings
    ("concat", "s", ("s", "s")), ("concatenate-strings", "s", ("s", "s")),
    ("string", "s", ("a",)), ("string-upcase", "s", ("s",)),
    ("string-downcase", "s", ("s",)),
    ("string-join", "s", ("sl", '" "')), ("string-split", "sl", ("s",)),
    ("string-trim", "s", ('" "', "s")),
    ("starts-with-p", "b", ("s", "s")), ("ends-with-p", "b", ("s", "s")),
    ("string-contains-p", "b", ("s", "s")),
    ("string<", "b", ("s", "s")), ("string=", "b", ("s", "s")),
    ("stringp", "b", ("a",)), ("symbol-name", "s", ("S",)),
    ("prin1-to-string", "s", ("a",)), ("princ-to-string", "s", ("a",)),
    ("intern", "a", ("s",)), ("keyword", "k", ('"kw"',)),
    ("make-keyword", "k", ('"mk"',)), ("keywordp", "b", ("a",)),
    ("symbolp", "b", ("S",)),
    ("format", "s", ("nil-lit", '"~a+~d"', "a", "i")),
    # hash tables (constructed fresh, read back immediately)
    ("hash-count", "i", ("h",)), ("hash-keys", "L", ("h",)),
    ("hash-values", "L", ("h",)), ("hash-table-p", "b", ("h",)),
    ("hash-contains-p", "b", ("k", "h")),
    ("gethash", "a", ("k", "h", "i")),
    ("remhash", "a", ("k", "h")),
    # characters
    ("char-code", "i", ("chr",)), ("characterp", "b", ("chr",)),
    ("code-char", "a", ("charcode",)),
    # conditions (data constructors; control flow handled by garnish)
    ("condition-type", "s", ("c",)), ("condition-message", "s", ("c",)),
    ("condition-qname", "a", ("c",)),
]

#: names deliberately not generated, with the reason — surfaced in the
#: coverage report so generator gaps stay visible rather than silent.
EXCLUDED_BUILTINS: Dict[str, str] = {
    "%clock-sleep": "advances the runtime clock (oracle-relative)",
    "sleep": "advances the runtime clock (oracle-relative)",
    "get-universal-time": "reads the runtime clock (oracle-relative)",
    "random": "draws from the per-runtime RNG (oracle-relative)",
    "gensym": "fresh-name counters differ across engines",
    "define-condition": "mutates the process-global condition hierarchy",
    "prin1": "writes to host stdout",
    "princ": "writes to host stdout",
    "print": "writes to host stdout",
    "terpri": "writes to host stdout",
    "warn": "writes to host stderr",
    "constantly": "returns an opaque closure (compared via funcall only)",
    "make-condition": "constructed indirectly by condition accessors",
    "make-hash-table": "constructed indirectly by the hash templates",
    "error": "raised indirectly by the condition-control garnish",
    "signal": "raised indirectly by the condition-control garnish",
    "invoke-restart": "exercised inside the restart-case garnish",
    "find-restart": "exercised inside the restart-case garnish",
    "compute-restarts": "exercised inside the restart-case garnish",
}

#: the restricted template pool for the suspend stratum: everything
#: here keeps only picklable values on the operand stack, so a
#: continuation captured mid-expression round-trips through pickle.
_SUSPEND_SAFE = frozenset({
    "+", "-", "*", "1+", "1-", "abs", "min", "max", "mod",
    "list", "car", "cdr", "length", "append", "reverse", "cons",
    "nth", "not", "<", ">", "<=", ">=", "=", "evenp", "oddp", "zerop",
})


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------

class _Ctx:
    """Mutable generation context: scope, fuel, suspension rights."""

    def __init__(self, rng: random.Random, fuel: int, stratum: str):
        self.rng = rng
        self.fuel = fuel
        self.stratum = stratum
        self.int_vars: List[Symbol] = []
        self.list_vars: List[Symbol] = []
        self.str_vars: List[Symbol] = []
        self.helpers: List[Tuple[Symbol, int]] = []  # (name, arity)
        self.taskvars: List[Symbol] = []
        #: yields may only be placed on the fiber's own control spine
        #: (depth 1): not inside lambdas, futures, handlers or cleanups
        self.can_suspend = False
        self.yield_budget = 0
        #: mutation of outer bindings is illegal inside for-each bodies
        #: (child fibers get a cloned environment)
        self.can_mutate_outer = True
        #: loop induction variables: readable, but never setq/incf/decf
        #: targets — mutating the governor can unbound the loop
        self.frozen_vars: set = set()

    def spend(self, n: int = 1) -> bool:
        self.fuel -= n
        return self.fuel > 0

    def fresh(self, prefix: str) -> Symbol:
        return _S(f"{prefix}{self.rng.randrange(10_000)}x{self.fuel}")


class ProgramGenerator:
    """Deterministic weighted generator over the Gozer grammar."""

    def __init__(self, seed: int, stratum_weights: Optional[Dict[str, float]] = None):
        self.seed = seed
        self.stratum_weights = stratum_weights or \
            {PURE: 0.55, SUSPEND: 0.15, DIST: 0.30}

    # -- public --------------------------------------------------------

    def generate(self, index: int) -> GenProgram:
        rng = random.Random((self.seed * 1_000_003 + index) & 0xFFFFFFFF)
        roll = rng.random()
        total = sum(self.stratum_weights.values())
        acc = 0.0
        stratum = PURE
        for name, weight in self.stratum_weights.items():
            acc += weight / total
            if roll < acc:
                stratum = name
                break
        ctx = _Ctx(rng, fuel=rng.randint(25, 60), stratum=stratum)
        if stratum == SUSPEND:
            ctx.can_suspend = True
            ctx.yield_budget = rng.randint(1, 4)
        prelude = self._gen_prelude(ctx, index)
        body = self._gen_body(ctx, index)
        feeds = tuple(rng.randint(-9, 9) for _ in range(8)) \
            if stratum == SUSPEND else ()
        return GenProgram(prelude=prelude, body=body, feeds=feeds,
                          stratum=stratum, seed=self.seed, index=index,
                          name=f"seed{self.seed}-{index:04d}")

    def programs(self, budget: int) -> List[GenProgram]:
        return [self.generate(i) for i in range(budget)]

    # -- prelude -------------------------------------------------------

    def _gen_prelude(self, ctx: _Ctx, index: int) -> List[Any]:
        rng = ctx.rng
        prelude: List[Any] = []
        for hk in range(rng.randint(0, 2)):
            name = _S(f"helper{index % 97}n{hk}")
            arity = rng.randint(1, 2)
            params = [_S("a"), _S("b")][:arity]
            sub = _Ctx(rng, fuel=8, stratum=PURE)
            sub.int_vars = list(params)
            body = self._int(sub)
            prelude.append([_S("defun"), name, params, body])
            ctx.helpers.append((name, arity))
        if ctx.stratum == PURE and rng.random() < 0.12:
            head = _S(rng.choice(["defvar", "defparameter"]))
            var = _S(f"*conf-g{index % 53}*")
            prelude.append([head, var, rng.randint(0, 20)])
            ctx.int_vars.append(var)
        if ctx.stratum == DIST and rng.random() < 0.5:
            for tk in range(rng.randint(1, 2)):
                var = _S(f"tv{index % 41}n{tk}")
                prelude.append([_S("deftaskvar"), var, rng.randint(0, 9)])
                ctx.taskvars.append(var)
        return prelude

    # -- body ----------------------------------------------------------

    def _gen_body(self, ctx: _Ctx, index: int) -> Any:
        if ctx.stratum == DIST:
            return self._dist_body(ctx)
        result = self._result_expr(ctx)
        garnish = self._garnish(ctx, index)
        if garnish:
            return [_S("progn"), *garnish, result]
        return result

    def _result_expr(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        kind = rng.random()
        if ctx.stratum == SUSPEND:
            return self._suspend_spine(ctx)
        if kind < 0.45:
            return self._int(ctx)
        if kind < 0.65:
            return self._list(ctx)
        if kind < 0.75:
            return self._string(ctx)
        if kind < 0.85:
            return self._bool(ctx)
        return self._any(ctx)

    # -- integer expressions -------------------------------------------

    def _int(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        if not ctx.spend() or rng.random() < 0.25:
            return self._int_leaf(ctx)
        roll = rng.random()
        if roll < 0.30:
            return self._template_call(ctx, ret="i")
        if roll < 0.42:
            return [_S("if"), self._bool(ctx), self._int(ctx),
                    self._int(ctx)]
        if roll < 0.54:
            return self._let_block(ctx, self._int)
        if roll < 0.62 and ctx.helpers:
            name, arity = rng.choice(ctx.helpers)
            return [name, *[self._int(ctx) for _ in range(arity)]]
        if roll < 0.70:
            return self._counting_loop(ctx)
        if roll < 0.78:
            lam = self._fn_expr(ctx, "f1i")
            return [_S("funcall"), lam, self._int(ctx)]
        if roll < 0.86:
            return [_S("length"), self._list(ctx)]
        if roll < 0.93 and ctx.can_suspend and ctx.yield_budget > 0:
            ctx.yield_budget -= 1
            return [_S("yield"), self._int_leaf(ctx)]
        return [_S(rng.choice(["+", "-", "*"])), self._int(ctx),
                self._int(ctx)]

    def _int_leaf(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        if ctx.int_vars and rng.random() < 0.5:
            return rng.choice(ctx.int_vars)
        return rng.randint(-20, 99)

    def _counting_loop(self, ctx: _Ctx) -> Any:
        """Bounded accumulation loop: the only loops the grammar emits.

        The induction variable is readable inside the generated body
        but frozen against mutation — a ``setq``/``decf`` on the loop
        governor would unbound the loop (found as a fuzzer-hang on
        seed 7, index 57: ``decf`` of a ``loop for`` variable).
        """
        rng = ctx.rng
        n = rng.randint(1, 5)
        i = ctx.fresh("i")
        acc = ctx.fresh("acc")
        saved = list(ctx.int_vars)
        saved_frozen = set(ctx.frozen_vars)
        ctx.int_vars = saved + [i, acc]
        ctx.frozen_vars = saved_frozen | {i.name}
        try:
            style = rng.random()
            if style < 0.30:
                step = self._int(ctx)
                return [_S("let"), [[acc, 0]],
                        [_S("dotimes"), [i, n],
                         [_S("setq"), acc, [_S("+"), acc, step]]],
                        acc]
            if style < 0.55:
                step = self._int(ctx)
                return [_S("let"), [[acc, 0], [i, n]],
                        [_S("while"), [_S(">"), i, 0],
                         [_S("setq"), acc, [_S("+"), acc, step]],
                         [_S("setq"), i, [_S("-"), i, 1]]],
                        acc]
            if style < 0.80:
                ctx.int_vars = saved + [i]
                body = self._int(ctx)
                return [_S("loop"), _S("for"), i, _S("from"), 1,
                        _S("to"), n, _S("sum"), body]
            step = self._int(ctx)
            return [_S("let"), [[acc, 0]],
                    [_S("dolist"), [i, self._list_literal(ctx)],
                     [_S("setq"), acc, [_S("+"), acc, step]]],
                    acc]
        finally:
            ctx.int_vars = saved
            ctx.frozen_vars = saved_frozen

    def _let_block(self, ctx: _Ctx, result_gen) -> Any:
        rng = ctx.rng
        head = _S(rng.choice(["let", "let*"]))
        bindings = []
        saved = list(ctx.int_vars)
        for _ in range(rng.randint(1, 3)):
            var = ctx.fresh("v")
            bindings.append([var, self._int(ctx)])
            ctx.int_vars.append(var)
        stmts = [self._statement(ctx) for _ in range(rng.randint(0, 2))]
        result = result_gen(ctx)
        ctx.int_vars = saved
        return [head, bindings, *stmts, result]

    def _statement(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        roll = rng.random()
        mutable = [v for v in ctx.int_vars
                   if v.name not in ctx.frozen_vars]
        if roll < 0.40 and mutable and ctx.can_mutate_outer:
            return [_S("setq"), rng.choice(mutable), self._int(ctx)]
        if roll < 0.55 and mutable and ctx.can_mutate_outer:
            head = _S(rng.choice(["incf", "decf"]))
            return [head, rng.choice(mutable)]
        if roll < 0.70:
            return [_S(rng.choice(["when", "unless"])), self._bool(ctx),
                    self._int(ctx)]
        if roll < 0.80 and ctx.can_suspend and ctx.yield_budget > 0:
            ctx.yield_budget -= 1
            return [_S("yield"), self._int_leaf(ctx)]
        return self._int(ctx)

    # -- other types ---------------------------------------------------

    def _bool(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        if not ctx.spend() or rng.random() < 0.3:
            return rng.choice(
                [True, False, [_S("evenp"), self._int_leaf(ctx)]])
        roll = rng.random()
        if roll < 0.35:
            return [_S(rng.choice(["<", ">", "<=", ">=", "=", "/="])),
                    self._int(ctx), self._int(ctx)]
        if roll < 0.55:
            return [_S(rng.choice(["and", "or"])), self._bool(ctx),
                    self._bool(ctx)]
        if roll < 0.65:
            return [_S("not"), self._bool(ctx)]
        return self._template_call(ctx, ret="b")

    def _list(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        if not ctx.spend() or rng.random() < 0.35:
            return self._list_literal(ctx)
        if ctx.list_vars and rng.random() < 0.25:
            return rng.choice(ctx.list_vars)
        return self._template_call(ctx, ret="L")

    def _list_literal(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        n = rng.randint(0, 5)
        return [_S("list"), *[self._int_leaf(ctx) for _ in range(n)]]

    def _string(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        if not ctx.spend() or rng.random() < 0.45:
            return self._string_literal(rng)
        return self._template_call(ctx, ret="s")

    @staticmethod
    def _string_literal(rng: random.Random) -> str:
        alphabet = "abcdefg hij-k"
        return "".join(rng.choice(alphabet)
                       for _ in range(rng.randint(0, 8)))

    def _keyword(self, ctx: _Ctx) -> Any:
        return _K(ctx.rng.choice(
            ["alpha", "beta", "gamma", "delta", "big", "small", "ok"]))

    def _any(self, ctx: _Ctx) -> Any:
        roll = ctx.rng.random()
        if roll < 0.35:
            return self._int(ctx)
        if roll < 0.5:
            return self._string(ctx)
        if roll < 0.65:
            return self._keyword(ctx)
        if roll < 0.8:
            return self._list(ctx)
        if roll < 0.9:
            return self._bool(ctx)
        return None

    # -- templates -----------------------------------------------------

    def _template_call(self, ctx: _Ctx, ret: str) -> Any:
        rng = ctx.rng
        pool = [t for t in TEMPLATES if t[1] == ret]
        if ctx.stratum == SUSPEND:
            pool = [t for t in pool if t[0] in _SUSPEND_SAFE]
        if not pool:
            return self._int_leaf(ctx)
        name, _ret, tokens = rng.choice(pool)
        return self._instantiate(ctx, name, tokens)

    def _instantiate(self, ctx: _Ctx, name: str,
                     tokens: Tuple[str, ...]) -> Any:
        return [_S(name), *[self._arg(ctx, tok) for tok in tokens]]

    def _arg(self, ctx: _Ctx, token: str) -> Any:
        rng = ctx.rng
        if token.startswith('"'):
            return token.strip('"')
        if token.startswith(":"):
            return _K(token[1:])
        if token == "i":
            return self._int(ctx)
        if token == "p":
            return rng.randint(1, 6)
        if token == "n":
            return rng.randint(0, 3)
        if token == "b":
            return self._bool(ctx)
        if token == "L":
            return self._list(ctx)
        if token == "Lf":
            return [_S("list"),
                    *[rng.randint(0, 9) for _ in range(rng.randint(1, 4))]]
        if token == "L1":
            return [_S("list"),
                    *[rng.randint(0, 9) for _ in range(rng.randint(1, 4))]]
        if token == "s":
            return self._string(ctx)
        if token == "sl":
            return [_S("list"),
                    *[self._string_literal(rng) for _ in range(rng.randint(1, 3))]]
        if token == "a":
            return self._any(ctx)
        if token == "k":
            return self._keyword(ctx)
        if token == "S":
            return [_S("quote"), _S(rng.choice(["alpha", "beta", "gam"]))]
        if token == "nil-lit":
            return None
        if token == "charcode":
            return rng.randint(65, 90)
        if token == "chr":
            return [_S("code-char"), rng.randint(97, 122)]
        if token == "h":
            pairs = []
            for _ in range(rng.randint(0, 3)):
                pairs.append((self._keyword(ctx), rng.randint(0, 9)))
            h = ctx.fresh("h")
            sets = [[_S("setf"), [_S("gethash"), key, h], value]
                    for key, value in pairs]
            return [_S("let"), [[h, [_S("make-hash-table")]]], *sets, h]
        if token == "c":
            return [_S("make-condition"), "conf-error",
                    self._string_literal(rng)]
        if token == "al":
            return [_S("list"),
                    *[[_S("list"), k, rng.randint(0, 9)]
                      for k in range(rng.randint(1, 4))]]
        if token == "pl":
            return [_S("list"), _K("a"), rng.randint(0, 9),
                    _K("b"), rng.randint(0, 9)]
        if token in ("f1i", "f1b", "f2i", "f2b", "f1L", "constantly-a"):
            return self._fn_expr(ctx, token)
        raise ValueError(f"unknown template token {token!r}")

    def _fn_expr(self, ctx: _Ctx, kind: str) -> Any:
        rng = ctx.rng
        if kind == "constantly-a":
            return [_S("constantly"), self._any(ctx)]
        if kind == "f1i":
            if rng.random() < 0.4:
                return [_S("function"),
                        _S(rng.choice(["1+", "1-", "abs"]))]
            var = ctx.fresh("x")
            saved = list(ctx.int_vars)
            ctx.int_vars = [var]
            suspend_saved = ctx.can_suspend
            ctx.can_suspend = False  # lambdas run in nested loops
            body = self._int(ctx)
            ctx.int_vars = saved
            ctx.can_suspend = suspend_saved
            return [_S(rng.choice(["lambda", "fn"])), [var], body]
        if kind == "f1b":
            if rng.random() < 0.5:
                return [_S("function"),
                        _S(rng.choice(["evenp", "oddp", "plusp",
                                       "minusp", "zerop"]))]
            var = ctx.fresh("x")
            return [_S("lambda"), [var],
                    [_S(rng.choice(["<", ">", "=", ">="])), var,
                     rng.randint(-5, 5)]]
        if kind == "f2i":
            if rng.random() < 0.6:
                return [_S("function"),
                        _S(rng.choice(["+", "-", "*", "max", "min"]))]
            a, b = ctx.fresh("a"), ctx.fresh("b")
            return [_S("lambda"), [a, b],
                    [_S("+"), a, [_S("*"), 2, b]]]
        if kind == "f2b":
            return [_S("function"), _S(rng.choice([">", "<"]))]
        if kind == "f1L":
            var = ctx.fresh("x")
            return [_S("lambda"), [var], [_S("list"), var, var]]
        raise ValueError(kind)

    # -- suspend stratum -----------------------------------------------

    def _suspend_spine(self, ctx: _Ctx) -> Any:
        """The main control spine of a suspend-stratum program."""
        rng = ctx.rng
        acc = ctx.fresh("acc")
        saved = list(ctx.int_vars)
        ctx.int_vars = saved + [acc]
        stmts: List[Any] = []
        if rng.random() < 0.35:
            stmts.append([_S("push-cc")])
        n_stmts = rng.randint(1, 3)
        for _ in range(n_stmts):
            stmts.append(self._statement(ctx))
        if ctx.yield_budget > 0:
            ctx.yield_budget -= 1
            stmts.append([_S("setq"), acc,
                          [_S("+"), acc, [_S("yield"), acc]]])
        result = self._int(ctx)
        ctx.int_vars = saved
        return [_S("let"), [[acc, rng.randint(0, 9)]], *stmts,
                [_S("+"), acc, result]]

    # -- dist stratum --------------------------------------------------

    def _dist_body(self, ctx: _Ctx) -> Any:
        rng = ctx.rng
        stmts: List[Any] = []
        reads: List[Any] = []
        for tv in ctx.taskvars:
            if rng.random() < 0.8:
                stmts.append([_S("%set-task-var"),
                              [_S("quote"), _S(tv.name + "^")],
                              self._int(ctx)])
            reads.append(self._taskvar_read(tv))
        fan = self._fan_out(ctx, depth=1)
        roll = rng.random()
        if roll < 0.4:
            result = [_S("apply"), [_S("function"), _S("+")], fan]
        elif roll < 0.6:
            result = [_S("length"), fan]
        elif roll < 0.8:
            result = fan
        else:
            result = [_S("reverse"), fan]
        if reads:
            result = [_S("list"), result, *reads]
        if stmts:
            return [_S("progn"), *stmts, result]
        return result

    @staticmethod
    def _taskvar_read(tv: Symbol) -> Any:
        return [_S("%get-task-var"), [_S("quote"), _S(tv.name + "^")]]

    def _fan_out(self, ctx: _Ctx, depth: int) -> Any:
        rng = ctx.rng
        if rng.random() < 0.25:
            saved_mut = ctx.can_mutate_outer
            ctx.can_mutate_outer = False
            branches = [self._int(ctx) for _ in range(rng.randint(1, 3))]
            ctx.can_mutate_outer = saved_mut
            return [_S("parallel"), *branches]
        var = ctx.fresh("item")
        items = [_S("list"),
                 *[rng.randint(0, 9) for _ in range(rng.randint(0, 5))]]
        header: List[Any] = [var, _S("in"), items]
        if rng.random() < 0.25:
            header += [_K("chunk-size"), rng.randint(1, 3)]
        elif rng.random() < 0.15:
            header += [_K("strategy"), _K("chain")]
        saved = list(ctx.int_vars)
        saved_mut = ctx.can_mutate_outer
        ctx.int_vars = saved + [var]
        ctx.can_mutate_outer = False
        if depth < 2 and rng.random() < 0.15:
            inner = self._fan_out(ctx, depth + 1)
            body = [_S("apply"), [_S("function"), _S("+")],
                    [_S("cons"), var, inner]]
        else:
            body = self._int(ctx)
        ctx.int_vars = saved
        ctx.can_mutate_outer = saved_mut
        return [_S("for-each"), header, body]

    # -- garnish: round-robin breadth over templates and rare forms ----

    def _garnish(self, ctx: _Ctx, index: int) -> List[Any]:
        """Deterministic breadth filler for the pure stratum.

        Rotates through the full template table and through the rare
        special forms so a modest fuzz budget still visits ~all of the
        grammar; values are computed and discarded (their behaviour is
        still differential — any oracle disagreement in a garnish
        expression changes the signalled-condition outcome).
        """
        if ctx.stratum != PURE:
            return []
        garnish: List[Any] = []
        for j in range(9):
            name, _ret, tokens = TEMPLATES[(index * 7 + j) % len(TEMPLATES)]
            garnish.append(self._instantiate(ctx, name, tokens))
        garnish.append(self._form_garnish(ctx, index))
        # discard the values in one go; `list` keeps them evaluated
        return [[_S("list"), *garnish]]

    def _form_garnish(self, ctx: _Ctx, index: int) -> Any:
        # alternate tree-safe and tree-unsupported builders so the
        # breadth filler doesn't silently disable the tree oracle for
        # the whole pure stratum
        safe = [
            self._g_block_return, self._g_return_nil, self._g_setf,
            self._g_cond_case, self._g_prog1, self._g_push_macro,
            self._g_destructure, self._g_quasi,
        ]
        unsafe = [
            self._g_unwind, self._g_handler_case, self._g_handler_bind,
            self._g_restart_case, self._g_declare_the, self._g_dot,
            self._g_intrinsic, self._g_future, self._g_ignore_errors,
            self._g_fancy_lambda, self._g_dynvars, self._g_with_restart,
            self._g_assert,
        ]
        if index % 2 == 0:
            return safe[(index // 2) % len(safe)](ctx)
        return unsafe[(index // 2) % len(unsafe)](ctx)

    def _g_block_return(self, ctx: _Ctx) -> Any:
        b = ctx.fresh("blk")
        return [_S("block"), b,
                [_S("if"), self._bool(ctx),
                 [_S("return-from"), b, self._int(ctx)]],
                self._int(ctx)]

    def _g_return_nil(self, ctx: _Ctx) -> Any:
        return [_S("block"), None,
                [_S("when"), self._bool(ctx),
                 [_S("return"), self._int(ctx)]],
                self._int(ctx)]

    def _g_unwind(self, ctx: _Ctx) -> Any:
        v = ctx.fresh("u")
        return [_S("let"), [[v, 0]],
                [_S("unwind-protect"),
                 [_S("setq"), v, self._int(ctx)],
                 [_S("setq"), v, [_S("+"), v, 1]]],
                v]

    def _g_handler_case(self, ctx: _Ctx) -> Any:
        c = ctx.fresh("c")
        return [_S("handler-case"),
                [_S("if"), self._bool(ctx),
                 [_S("error"), "conf-boom"], self._int(ctx)],
                [_S("error"), [c], [_S("condition-type"), c]]]

    def _g_handler_bind(self, ctx: _Ctx) -> Any:
        b, c = ctx.fresh("hb"), ctx.fresh("c")
        return [_S("block"), b,
                [_S("handler-bind"),
                 [[_S("error"),
                   [_S("lambda"), [c], [_S("return-from"), b,
                                        self._int(ctx)]]]],
                 [_S("signal"), "conf-note"],
                 [_S("error"), "conf-boom"]]]

    def _g_restart_case(self, ctx: _Ctx) -> Any:
        v = ctx.fresh("rv")
        return [_S("restart-case"),
                [_S("if"), self._bool(ctx),
                 [_S("invoke-restart"), [_S("quote"), _S("use-value")],
                  self._int(ctx)],
                 self._int(ctx)],
                [_S("use-value"), [v], [_S("+"), v, 1]]]

    def _g_declare_the(self, ctx: _Ctx) -> Any:
        v = ctx.fresh("d")
        return [_S("let"), [[v, self._int(ctx)]],
                [_S("declare"), [_S("type"), _S("integer"), v]],
                [_S("the"), _S("integer"), v]]

    def _g_dot(self, ctx: _Ctx) -> Any:
        return [_S("."), self._string(ctx), [_S("upper")]]

    def _g_intrinsic(self, ctx: _Ctx) -> Any:
        h = ctx.fresh("h")
        return [_S("let"), [[h, [_S("make-hash-table")]]],
                [_S("%"), _S("sethash"), self._keyword(ctx), h,
                 self._int(ctx)],
                [_S("hash-count"), h]]

    def _g_future(self, ctx: _Ctx) -> Any:
        f = ctx.fresh("fut")
        if ctx.rng.random() < 0.5:
            return [_S("touch"), [_S("future"), self._int(ctx)]]
        return [_S("let"), [[f, [_S("pcall"), [_S("function"), _S("+")],
                                 self._int(ctx), self._int(ctx)]]],
                [_S("list"), [_S("futurep"), f], [_S("future-p"), f],
                 [_S("touch"), f], [_S("determined-p"), f]]]

    def _g_dynvars(self, ctx: _Ctx) -> Any:
        # defun -> store-global; let over a special -> dyn-bind/unbind
        fn = ctx.fresh("dfn")
        var = _S(f"*conf-dyn{ctx.rng.randrange(1000)}*")
        return [_S("progn"),
                [_S("defun"), fn, [_S("a")], [_S("+"), _S("a"), 1]],
                [_S("defvar"), var, self._int(ctx)],
                [_S("let"), [[var, self._int(ctx)]],
                 [fn, var]]]

    def _g_destructure(self, ctx: _Ctx) -> Any:
        a, b = ctx.fresh("da"), ctx.fresh("db")
        return [_S("destructuring-bind"), [a, b],
                [_S("list"), self._int(ctx), self._int(ctx)],
                [_S("-"), a, b]]

    def _g_quasi(self, ctx: _Ctx) -> Any:
        return [_S("quasiquote"),
                [1, [_S("unquote"), self._int(ctx)],
                 [_S("unquote-splicing"), self._list_literal(ctx)]]]

    def _g_with_restart(self, ctx: _Ctx) -> Any:
        return [_S("with-simple-restart"),
                [_S("bail"), "conformance bail-out"],
                [_S("if"), self._bool(ctx),
                 [_S("invoke-restart"), [_S("quote"), _S("bail")]],
                 self._int(ctx)]]

    def _g_assert(self, ctx: _Ctx) -> Any:
        v = ctx.fresh("av")
        return [_S("let"), [[v, self._int(ctx)]],
                [_S("assert"), [_S("="), v, v]],
                v]

    def _g_setf(self, ctx: _Ctx) -> Any:
        v = ctx.fresh("sl")
        return [_S("let"), [[v, [_S("list"), 1, 2, 3]]],
                [_S("setf"), [_S("car"), v], self._int(ctx)],
                [_S("setf"), [_S("nth"), 2, v], self._int(ctx)],
                v]

    def _g_cond_case(self, ctx: _Ctx) -> Any:
        v = ctx.fresh("cc")
        return [_S("let"), [[v, self._int(ctx)]],
                [_S("cond"),
                 [[_S("<"), v, 0], _K("neg")],
                 [[_S("="), v, 0], _K("zero")],
                 [True, [_S("case"), [_S("mod"), v, 3],
                         [0, _K("fizz")], [1, _K("one")],
                         [True, _K("rest")]]]]]

    def _g_ignore_errors(self, ctx: _Ctx) -> Any:
        return [_S("ignore-errors"),
                [_S("if"), self._bool(ctx),
                 [_S("error"), "conf-ie"], self._int(ctx)]]

    def _g_prog1(self, ctx: _Ctx) -> Any:
        return [_S("prog1"), self._int(ctx),
                [_S("prog2"), self._int(ctx), self._int(ctx)]]

    def _g_fancy_lambda(self, ctx: _Ctx) -> Any:
        x, y = ctx.fresh("fx"), ctx.fresh("fy")
        return [[_S("lambda"), [x, _S("&optional"), [y, 10]],
                 [_S("+"), x, y]],
                self._int(ctx)]

    def _g_push_macro(self, ctx: _Ctx) -> Any:
        v, w = ctx.fresh("pv"), ctx.fresh("pw")
        return [_S("let"), [[v, [_S("list"), 9]], [w, [_S("list"), 1, 2]]],
                [_S("push"), self._int(ctx), v],
                [_S("rotatef"), v, w],
                [_S("append"), v, w]]
