"""Coverage accounting: which fraction of the language surface the
generated programs actually exercised.

Three ledgers, three denominators:

* **special forms** — the compiler's ``_special_forms`` table; credited
  from the surface walk *and* from a macroexpanded walk (so e.g. a
  ``handler-case`` credits the ``handler-bind`` it expands into).
* **builtins** — both stdlib registries; credited from surface marks.
* **opcodes** — :data:`repro.lang.bytecode.OPCODES`; credited by
  compiling each program and walking its (nested) code objects.

Known-unreachable entries are excluded *with a reason* and the reasons
are part of the report — a generator gap must be visible, never silent
(ISSUE 10's "coverage accounter" requirement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Sequence, Set

from ..lang.bytecode import OPCODES, CodeObject
from .grammar import (EXCLUDED_BUILTINS, GenProgram, analyze,
                      builtin_names, special_form_names)

#: opcodes the compiler can never emit today, with the reason
EXCLUDED_OPCODES: Dict[str, str] = {
    "call-kw": "the compiler lowers keyword calls through plain `call`",
    "load-global": "reserved for the inline-caching optimization; the "
                   "compiler only emits `load`",
}


def expand_all(form: Any, global_env, apply_fn) -> Any:
    """Recursively macroexpand a form (expansion results included)."""
    from ..lang.macros import macroexpand
    from ..lang.symbols import Symbol

    expanded = macroexpand(form, global_env, apply_fn)
    if not isinstance(expanded, list) or not expanded:
        return expanded
    head = expanded[0]
    if isinstance(head, Symbol) and head.name == "quote":
        return expanded
    return [expand_all(item, global_env, apply_fn) for item in expanded]


def walk_opcodes(code: CodeObject, into: Set[str]) -> None:
    """Collect opcode names from a code object and every nested one
    (closure bodies, future thunks, unwind cleanups)."""
    for op, arg in code.instructions:
        into.add(op)
        if isinstance(arg, CodeObject):
            walk_opcodes(arg, into)
        elif isinstance(arg, (list, tuple)):
            for item in arg:
                if isinstance(item, CodeObject):
                    walk_opcodes(item, into)


@dataclass
class CoverageReport:
    special_forms: Dict[str, bool]
    builtins: Dict[str, bool]
    opcodes: Dict[str, bool]
    excluded_builtins: Dict[str, str]
    excluded_opcodes: Dict[str, str]
    macros: Dict[str, bool] = field(default_factory=dict)

    @staticmethod
    def _ratio(table: Dict[str, bool]) -> float:
        return (sum(table.values()) / len(table)) if table else 1.0

    @property
    def special_form_ratio(self) -> float:
        return self._ratio(self.special_forms)

    @property
    def builtin_ratio(self) -> float:
        return self._ratio(self.builtins)

    @property
    def opcode_ratio(self) -> float:
        return self._ratio(self.opcodes)

    def missing(self, table: Dict[str, bool]) -> List[str]:
        return sorted(name for name, hit in table.items() if not hit)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "special_forms": {
                "ratio": round(self.special_form_ratio, 4),
                "hit": sum(self.special_forms.values()),
                "total": len(self.special_forms),
                "missing": self.missing(self.special_forms),
            },
            "builtins": {
                "ratio": round(self.builtin_ratio, 4),
                "hit": sum(self.builtins.values()),
                "total": len(self.builtins),
                "missing": self.missing(self.builtins),
                "excluded": self.excluded_builtins,
            },
            "opcodes": {
                "ratio": round(self.opcode_ratio, 4),
                "hit": sum(self.opcodes.values()),
                "total": len(self.opcodes),
                "missing": self.missing(self.opcodes),
                "excluded": self.excluded_opcodes,
            },
            "macros": {
                "hit": sum(self.macros.values()),
                "total": len(self.macros),
                "missing": self.missing(self.macros),
            },
        }


class CoverageAccounter:
    """Accumulates coverage over a stream of programs."""

    def __init__(self):
        from ..lang.macros import CORE_MACROS

        self._sf: Set[str] = set()
        self._fn: Set[str] = set()
        self._op: Set[str] = set()
        self._macro: Set[str] = set()
        self._all_sf = special_form_names()
        self._all_fn = builtin_names() - set(EXCLUDED_BUILTINS)
        self._all_op = frozenset(OPCODES) - set(EXCLUDED_OPCODES)
        self._all_macros = frozenset(
            s.name for s in CORE_MACROS) | {"for-each", "parallel",
                                            "deftaskvar"}

    def record(self, program: GenProgram) -> None:
        analysis = program.analysis
        for mark in analysis.marks:
            kind, _, name = mark.partition(":")
            if kind == "sf":
                self._sf.add(name)
            elif kind == "fn":
                self._fn.add(name)
            elif kind == "macro":
                self._macro.add(name)
        self._record_expanded(program)
        self._record_opcodes(program)

    def _record_expanded(self, program: GenProgram) -> None:
        """Credit special forms reached only through macroexpansion."""
        from ..gvm.runtime import make_runtime

        try:
            rt = make_runtime()
            expanded = [expand_all(f, rt.global_env, rt.apply)
                        for f in program.sequential_forms]
        except Exception:  # noqa: BLE001 - coverage must never kill a run
            return
        for mark in analyze(expanded).marks:
            kind, _, name = mark.partition(":")
            if kind == "sf":
                self._sf.add(name)
            elif kind == "fn":
                self._fn.add(name)

    def _record_opcodes(self, program: GenProgram) -> None:
        from ..gvm.runtime import make_runtime

        try:
            rt = make_runtime()
            forms = rt.read_all(program.sequential_source)
            for form in forms[:-1]:
                rt.eval_form(form)
            code = rt.compile(forms[-1], name="conf-cov")
        except Exception:  # noqa: BLE001
            return
        walk_opcodes(code, self._op)

    def report(self) -> CoverageReport:
        return CoverageReport(
            special_forms={n: n in self._sf for n in sorted(self._all_sf)},
            builtins={n: n in self._fn for n in sorted(self._all_fn)},
            opcodes={n: n in self._op for n in sorted(self._all_op)},
            excluded_builtins=dict(EXCLUDED_BUILTINS),
            excluded_opcodes=dict(EXCLUDED_OPCODES),
            macros={n: n in self._macro for n in sorted(self._all_macros)},
        )
