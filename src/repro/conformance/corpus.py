"""Checked-in conformance corpus: ``.gozer`` files replayed by pytest.

Format — a comment header followed by printed forms, the last form
being the program body::

    ;; name: seed7-0042-tree
    ;; stratum: pure
    ;; feeds: 3 -1 4
    ;; note: fixed unpicklable constantly closures (PR 10)
    (defun helper (a) (* a 2))
    (+ (helper 3) 4)

``feeds`` answers the program's yields (suspend stratum).  ``note``
names the bug a shrunken repro pinned down, per ISSUE 10 satellite 4.
Reproduce any entry from scratch with::

    python -m repro fuzz --seed <S> --budget <N>

since program ``i`` of seed ``S`` is a pure function of ``(S, i)``.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..lang.printer import print_form
from .grammar import DIST, PURE, SUSPEND, GenProgram, analyze

_STRATA = (PURE, SUSPEND, DIST)


def dumps(program: GenProgram) -> str:
    lines = [f";; name: {program.name}",
             f";; stratum: {program.stratum}"]
    if program.seed is not None:
        lines.append(f";; seed: {program.seed}")
    if program.index is not None:
        lines.append(f";; index: {program.index}")
    if program.feeds:
        lines.append(";; feeds: " + " ".join(str(f) for f in program.feeds))
    for note_line in program.note.splitlines():
        lines.append(f";; note: {note_line}")
    for form in program.forms:
        lines.append(print_form(form))
    return "\n".join(lines) + "\n"


def loads(text: str, fallback_name: str = "corpus-entry") -> GenProgram:
    from ..gvm.runtime import make_runtime

    name = fallback_name
    stratum = PURE
    feeds: tuple = ()
    seed: Optional[int] = None
    index: Optional[int] = None
    notes: List[str] = []
    body_lines: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith(";;"):
            content = stripped[2:].strip()
            key, _, value = content.partition(":")
            key, value = key.strip(), value.strip()
            if key == "name":
                name = value
            elif key == "stratum" and value in _STRATA:
                stratum = value
            elif key == "feeds":
                feeds = tuple(int(tok) for tok in value.split())
            elif key == "seed":
                seed = int(value)
            elif key == "index":
                index = int(value)
            elif key == "note":
                notes.append(value)
        else:
            body_lines.append(line)
    forms = make_runtime().read_all("\n".join(body_lines))
    if not forms:
        raise ValueError(f"corpus entry {name!r} has no forms")
    return GenProgram(prelude=forms[:-1], body=forms[-1], feeds=feeds,
                      stratum=stratum, name=name, seed=seed, index=index,
                      note="\n".join(notes))


def save(program: GenProgram, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{program.name}.gozer")
    with open(path, "w") as fh:
        fh.write(dumps(program))
    return path


def load_file(path: str) -> GenProgram:
    with open(path) as fh:
        text = fh.read()
    fallback = os.path.splitext(os.path.basename(path))[0]
    return loads(text, fallback_name=fallback)


def load_dir(directory: str) -> List[GenProgram]:
    if not os.path.isdir(directory):
        return []
    programs = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".gozer"):
            programs.append(load_file(os.path.join(directory, entry)))
    return programs
