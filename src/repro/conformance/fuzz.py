"""The fuzz campaign driver behind ``python -m repro fuzz``.

Generates ``budget`` programs from ``seed``, runs the differential
oracle matrix on each, accounts coverage, delta-debugs every divergence
to a minimal repro and (optionally) persists the repros as replayable
corpus entries.  All ``conformance.*`` metrics flow through
:class:`repro.observe.MetricsRegistry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..observe import MetricsRegistry
from .corpus import save
from .coverage import CoverageAccounter, CoverageReport
from .executor import DifferentialExecutor, Divergence, ProgramVerdict
from .grammar import ProgramGenerator
from .shrinker import ShrinkResult, shrink_divergence


@dataclass
class ShrunkDivergence:
    divergence: Divergence
    shrink: ShrinkResult
    corpus_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.divergence.program.name,
            "oracle": self.divergence.oracle,
            "baseline": self.divergence.baseline.describe(),
            "observed": self.divergence.observed.describe(),
            "shrunk_source": self.shrink.program.source,
            "shrink_checks": self.shrink.checks,
            "shrink_exhausted": self.shrink.exhausted,
            "corpus_path": self.corpus_path,
        }


@dataclass
class FuzzReport:
    seed: int
    budget: int
    programs: int = 0
    strata: Dict[str, int] = field(default_factory=dict)
    oracle_runs: Dict[str, int] = field(default_factory=dict)
    skips: Dict[str, int] = field(default_factory=dict)
    divergences: List[ShrunkDivergence] = field(default_factory=list)
    coverage: Optional[CoverageReport] = None
    metrics: Optional[MetricsRegistry] = None

    @property
    def unclassified_divergences(self) -> int:
        return len(self.divergences)

    @property
    def ok(self) -> bool:
        return self.unclassified_divergences == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "programs": self.programs,
            "strata": dict(self.strata),
            "oracle_runs": dict(self.oracle_runs),
            "classified_skips": dict(self.skips),
            "unclassified_divergences": self.unclassified_divergences,
            "divergences": [d.to_dict() for d in self.divergences],
            "coverage": self.coverage.to_dict() if self.coverage else None,
            "metrics": self.metrics.snapshot() if self.metrics else None,
        }

    def summary(self) -> str:
        cov = self.coverage
        lines = [
            f"conformance fuzz: seed={self.seed} budget={self.budget}",
            f"  programs: {self.programs}  strata: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.strata.items())),
            f"  oracle runs: "
            + " ".join(f"{k}={v}"
                       for k, v in sorted(self.oracle_runs.items())),
            f"  classified skips: "
            + (" ".join(f"{k}={v}" for k, v in sorted(self.skips.items()))
               or "none"),
            f"  unclassified divergences: {self.unclassified_divergences}",
        ]
        if cov is not None:
            lines.append(
                f"  coverage: special-forms "
                f"{cov.special_form_ratio:.1%} "
                f"({sum(cov.special_forms.values())}/"
                f"{len(cov.special_forms)}), builtins "
                f"{cov.builtin_ratio:.1%} "
                f"({sum(cov.builtins.values())}/{len(cov.builtins)}), "
                f"opcodes {cov.opcode_ratio:.1%}")
            for label, table in (("special forms", cov.special_forms),
                                 ("builtins", cov.builtins)):
                missing = cov.missing(table)
                if missing:
                    lines.append(f"  missing {label}: "
                                 + " ".join(missing[:12])
                                 + (" …" if len(missing) > 12 else ""))
        for shrunk in self.divergences:
            lines.append("  DIVERGENCE " + shrunk.divergence.describe())
            lines.append("    shrunk to: "
                         + shrunk.shrink.program.source.replace("\n", " "))
        return "\n".join(lines)


def run_fuzz(seed: int, budget: int, vinz_every: int = 10,
             chaos: bool = True, repro_dir: Optional[str] = None,
             metrics: Optional[MetricsRegistry] = None,
             shrink_checks: int = 400,
             progress=None) -> FuzzReport:
    """Run the full conformance campaign; see module docstring."""
    metrics = metrics if metrics is not None else MetricsRegistry()
    generator = ProgramGenerator(seed)
    executor = DifferentialExecutor(vinz_every=vinz_every, chaos=chaos,
                                    metrics=metrics)
    accounter = CoverageAccounter()
    report = FuzzReport(seed=seed, budget=budget, metrics=metrics)

    for index in range(budget):
        program = generator.generate(index)
        accounter.record(program)
        verdict = executor.run(program)
        report.programs += 1
        report.strata[program.stratum] = \
            report.strata.get(program.stratum, 0) + 1
        for oracle in verdict.outcomes:
            report.oracle_runs[oracle] = \
                report.oracle_runs.get(oracle, 0) + 1
        for reason in verdict.skips.values():
            report.skips[reason] = report.skips.get(reason, 0) + 1
        for divergence in verdict.divergences:
            report.divergences.append(
                _shrink_and_save(divergence, repro_dir, shrink_checks,
                                 metrics))
        if progress is not None and (index + 1) % 25 == 0:
            progress(index + 1, budget, len(report.divergences))

    report.coverage = accounter.report()
    cov = report.coverage
    gauge = metrics.gauge
    gauge("conformance.coverage.special_forms").set(
        cov.special_form_ratio)
    gauge("conformance.coverage.builtins").set(cov.builtin_ratio)
    gauge("conformance.coverage.opcodes").set(cov.opcode_ratio)
    return report


def _shrink_and_save(divergence: Divergence, repro_dir: Optional[str],
                     shrink_checks: int,
                     metrics: MetricsRegistry) -> ShrunkDivergence:
    program = divergence.program
    # vinz checks spin up a whole simulated cluster each — keep those
    # shrink budgets an order of magnitude smaller
    checks = shrink_checks if divergence.oracle != "vinz" \
        else max(20, shrink_checks // 10)
    result = shrink_divergence(program, divergence.oracle,
                               max_checks=checks)
    shrunk = result.program
    shrunk.name = f"{program.name}-{divergence.oracle}"
    shrunk.note = (f"diverged on {divergence.oracle}: baseline "
                   f"{divergence.baseline.describe()} vs "
                   f"{divergence.observed.describe()}")
    metrics.counter("conformance.shrinks").inc()
    metrics.histogram("conformance.shrink_checks").observe(result.checks)
    entry = ShrunkDivergence(divergence=divergence, shrink=result)
    if repro_dir:
        entry.corpus_path = save(shrunk, repro_dir)
    return entry


def write_report(report: FuzzReport, path: str) -> None:
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
