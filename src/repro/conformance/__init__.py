"""Generative conformance subsystem (ISSUE 10).

A seeded grammar-based Gozer program generator, a multi-oracle
differential executor (tree interpreter / bytecode VM / VM with
pickle-roundtripped continuations / distributed Vinz under chaos), a
delta-debugging shrinker and a coverage accounter — the machinery that
turns the paper's transparency claim (§4.1, §5: compilation and
continuation capture don't change what a program computes) into a
continuously checked property.  See docs/conformance.md.
"""

from .corpus import dumps, load_dir, load_file, loads, save
from .coverage import CoverageAccounter, CoverageReport
from .executor import DifferentialExecutor, Divergence, ProgramVerdict
from .grammar import (DIST, PURE, SUSPEND, TREE_UNSUPPORTED,
                      VINZ_UNSUPPORTED, Analysis, GenProgram,
                      ProgramGenerator, analyze, sequentialize)
from .oracles import (ConformanceTreeInterpreter, Outcome, StepwiseResult,
                      run_stepwise, run_tree, run_vinz, run_vm,
                      run_vm_pickle, stepwise_safe)
from .shrinker import ShrinkResult, Shrinker, shrink_divergence
from .fuzz import FuzzReport, run_fuzz, write_report

__all__ = [
    "Analysis", "ConformanceTreeInterpreter", "CoverageAccounter",
    "CoverageReport", "DIST", "DifferentialExecutor", "Divergence",
    "FuzzReport", "GenProgram", "Outcome", "PURE", "ProgramGenerator",
    "ProgramVerdict", "SUSPEND", "ShrinkResult", "Shrinker",
    "StepwiseResult", "TREE_UNSUPPORTED", "VINZ_UNSUPPORTED", "analyze",
    "dumps", "load_dir", "load_file", "loads", "run_fuzz",
    "run_stepwise", "run_tree", "run_vinz", "run_vm", "run_vm_pickle",
    "save", "sequentialize", "shrink_divergence", "stepwise_safe",
    "write_report",
]
