"""Delta-debugging shrinker for diverging Gozer programs.

Greedy structural minimization in the ddmin spirit, specialized to
s-expressions: a candidate edit is kept iff the *same oracle pair*
still disagrees on the edited program.  Candidate edits, in order of
aggressiveness:

1. drop whole prelude forms (helpers/defvars the divergence may not
   need);
2. replace the body with one of its proper subtrees ("hoisting" — the
   classic ddmin subset step adapted to trees);
3. delete elements from list forms (never the head, never binding
   headers whose removal changes arity rules);
4. replace leaf-ish subtrees with minimal literals (``0``, ``nil``,
   ``(list)``).

Every pass re-runs the interestingness predicate, so the result is
1-minimal with respect to these edits.  The predicate budget is capped
(``max_checks``) because each check replays up to two oracles; the cap
is reported on the result so truncated shrinks are visible.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..lang.symbols import Symbol
from .grammar import GenProgram
from .oracles import run_tree, run_vinz, run_vm, run_vm_pickle

#: list heads whose element positions carry syntax, not expressions —
#: dropping children there produces malformed programs, not smaller ones
_RIGID_HEADS = frozenset({
    "lambda", "fn", "defun", "let", "let*", "quote", "for-each",
    "destructuring-bind", "deftaskvar", "block", "return-from",
    "handler-bind", "handler-case", "restart-case", "case", "cond",
    "loop", "dotimes", "dolist", "setq", "setf", "function",
    "quasiquote", "unquote", "unquote-splicing",
})


def still_diverges(program: GenProgram, oracle: str,
                   max_resumes: int = 64) -> bool:
    """Re-run only the diverging oracle pair on a candidate program."""
    try:
        base = run_vm(program, max_resumes=max_resumes)
        if oracle == "vm":
            return base.kind == "engine-error"
        if oracle == "vm-pickle":
            other = run_vm_pickle(program, max_resumes=max_resumes)
            return not base.agrees_with(other, compare_yields=True)
        if oracle == "tree":
            other = run_tree(program)
            return not base.agrees_with(other)
        if oracle == "vinz":
            seed = (program.seed or 0) * 7919 + (program.index or 0)
            other = run_vinz(program, seed=seed)
            return not base.agrees_with(other, strict_ctype=False)
    except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
        return False
    raise ValueError(f"unknown oracle {oracle!r}")


@dataclass
class ShrinkResult:
    program: GenProgram
    checks: int
    exhausted: bool  # hit max_checks before reaching a fixpoint


class Shrinker:
    def __init__(self, is_interesting: Callable[[GenProgram], bool],
                 max_checks: int = 400):
        self.is_interesting = is_interesting
        self.max_checks = max_checks
        self.checks = 0

    # -- public --------------------------------------------------------

    def shrink(self, program: GenProgram) -> ShrinkResult:
        current = program
        changed = True
        while changed and self.checks < self.max_checks:
            changed = False
            for candidate in self._candidates(current):
                if self.checks >= self.max_checks:
                    break
                self.checks += 1
                if self.is_interesting(candidate):
                    current = candidate
                    changed = True
                    break
        return ShrinkResult(program=current, checks=self.checks,
                            exhausted=self.checks >= self.max_checks)

    # -- candidate edits (deterministic order) -------------------------

    def _candidates(self, program: GenProgram):
        # path-based edits (_replace_at) resolve against this program
        self._current = program
        # 1. drop prelude forms, last first (later forms are more
        #    likely to be unused by a minimized body)
        for i in reversed(range(len(program.prelude))):
            prelude = program.prelude[:i] + program.prelude[i + 1:]
            yield GenProgram(prelude=prelude, body=program.body,
                             feeds=program.feeds, stratum=program.stratum,
                             name=program.name, seed=program.seed,
                             index=program.index, note=program.note)
        # 2. hoist proper subtrees of the body over the body
        for subtree in self._subtrees(program.body, depth=0):
            yield self._with_body(program, copy.deepcopy(subtree))
        # 3. drop elements from flexible list forms
        yield from self._dropped(program.body)
        # 4. simplify subtrees to minimal literals
        yield from self._simplified(program.body)

    @staticmethod
    def _with_body(program: GenProgram, body: Any) -> GenProgram:
        return GenProgram(prelude=list(program.prelude), body=body,
                          feeds=program.feeds, stratum=program.stratum,
                          name=program.name, seed=program.seed,
                          index=program.index, note=program.note)

    def _subtrees(self, form: Any, depth: int):
        """Proper list subtrees, shallowest first (biggest cuts first)."""
        if not isinstance(form, list) or depth > 12:
            return
        head = form[0] if form else None
        args = form[1:] if isinstance(head, Symbol) else form
        for item in args:
            if isinstance(item, list) and item:
                yield item
        for item in args:
            if isinstance(item, list) and item:
                yield from self._subtrees(item, depth + 1)

    def _dropped(self, form: Any, path: Tuple[int, ...] = ()):
        """Copies of the body with one droppable element removed."""
        if not isinstance(form, list) or not form:
            return
        head = form[0]
        flexible = not (isinstance(head, Symbol)
                        and head.name in _RIGID_HEADS)
        for i in range(len(form)):
            if flexible and i > 0:
                yield self._replace_at(path + (i,), None, drop=True)
            child = form[i]
            if isinstance(child, list):
                yield from self._dropped(child, path + (i,))

    def _simplified(self, form: Any, path: Tuple[int, ...] = ()):
        if isinstance(form, list) and form:
            head = form[0]
            if not (isinstance(head, Symbol) and head.name == "quote"):
                for i, child in enumerate(form[1:], start=1):
                    yield from self._simplified(child, path + (i,))
            for literal in (0, None):
                yield self._replace_at(path, literal)
        elif isinstance(form, (int, str)) and form not in (0, ""):
            yield self._replace_at(path, 0)

    def _replace_at(self, path: Tuple[int, ...], value: Any,
                    drop: bool = False) -> GenProgram:
        program = self._current
        body = copy.deepcopy(program.body)
        if not path:
            return self._with_body(program, value)
        node = body
        for index in path[:-1]:
            node = node[index]
        if drop:
            del node[path[-1]]
        else:
            node[path[-1]] = value
        return self._with_body(program, body)

    #: the program whose body path-based edits resolve against
    _current: Optional[GenProgram] = None


def shrink_divergence(program: GenProgram, oracle: str,
                      max_checks: int = 400,
                      max_resumes: int = 64) -> ShrinkResult:
    """Minimize a diverging program against the given oracle pair.

    Vinz-pair shrinks get a smaller default budget from callers (each
    check spins up a simulated cluster).
    """
    return Shrinker(
        lambda p: still_diverges(p, oracle, max_resumes=max_resumes),
        max_checks=max_checks,
    ).shrink(program)
