"""Synthetic workload generation primitives.

The paper's evaluation is its production deployment (Section 5); since
that trace is proprietary, these generators synthesize workloads that
match the aggregate statistics the paper reports.  All randomness is
seeded for reproducibility.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..lang.symbols import Keyword


@dataclass
class TaskSpec:
    """One synthetic task: head work, then an optional distributed map.

    ``total_compute`` is the serial work the task represents (what the
    paper sums into "about 190 hours" per day).
    """

    arrival: float
    head_seconds: float
    child_seconds: List[float] = field(default_factory=list)
    service_calls: int = 0

    @property
    def total_compute(self) -> float:
        return self.head_seconds + sum(self.child_seconds)

    @property
    def fiber_count(self) -> int:
        return 1 + len(self.child_seconds)

    def to_params(self):
        """Encode as the plist params of the generic batch workflow."""
        return [Keyword("head-seconds"), self.head_seconds,
                Keyword("chunks"), list(self.child_seconds),
                Keyword("service-calls"), self.service_calls]


class LogNormalDuration:
    """A clipped log-normal duration model.

    Calibrated so that durations span the paper's range (20 ms to 12
    hours) with the configured mean: heavy-tailed, like production batch
    workloads.
    """

    def __init__(self, mean_seconds: float, sigma: float = 2.0,
                 minimum: float = 0.02, maximum: float = 12 * 3600.0):
        if mean_seconds <= 0:
            raise ValueError("mean must be positive")
        self.sigma = sigma
        self.mu = math.log(mean_seconds) - sigma * sigma / 2.0
        self.minimum = minimum
        self.maximum = maximum

    def sample(self, rng: random.Random) -> float:
        value = rng.lognormvariate(self.mu, self.sigma)
        return min(max(value, self.minimum), self.maximum)


class PoissonArrivals:
    """Task arrival times: a Poisson process over a period."""

    def __init__(self, count: int, period: float):
        self.count = count
        self.period = period

    def sample(self, rng: random.Random) -> List[float]:
        arrivals = sorted(rng.uniform(0.0, self.period)
                          for _ in range(self.count))
        return arrivals


@dataclass
class WorkloadProfile:
    """Knobs describing a synthetic task population."""

    #: mean total compute per task, seconds
    mean_task_seconds: float = 68.4
    #: log-normal spread
    sigma: float = 2.0
    #: fraction of tasks that fan out with for-each
    fanout_fraction: float = 0.6
    #: mean children per fanning-out task, chosen so the population
    #: averages the paper's ~4.5 fibers/task
    mean_children: float = 6.0
    #: fraction of a fanning task's work done in the children
    child_work_fraction: float = 0.8
    #: mean non-blocking service calls per task
    mean_service_calls: float = 1.0
    duration_min: float = 0.02
    duration_max: float = 12 * 3600.0


def generate_tasks(count: int, period: float, seed: int = 0,
                   profile: Optional[WorkloadProfile] = None) -> List[TaskSpec]:
    """Generate ``count`` task specs arriving over ``period`` seconds."""
    profile = profile or WorkloadProfile()
    rng = random.Random(seed)
    durations = LogNormalDuration(profile.mean_task_seconds,
                                  sigma=profile.sigma,
                                  minimum=profile.duration_min,
                                  maximum=profile.duration_max)
    arrivals = PoissonArrivals(count, period).sample(rng)
    specs: List[TaskSpec] = []
    for arrival in arrivals:
        total = durations.sample(rng)
        service_calls = min(rng.poissonvariate(profile.mean_service_calls)
                            if hasattr(rng, "poissonvariate")
                            else _poisson(rng, profile.mean_service_calls), 5)
        if rng.random() < profile.fanout_fraction and total > 1.0:
            children = max(1, _poisson(rng, profile.mean_children))
            child_total = total * profile.child_work_fraction
            weights = [rng.random() + 0.1 for _ in range(children)]
            wsum = sum(weights)
            child_seconds = [child_total * w / wsum for w in weights]
            head = total - child_total
        else:
            child_seconds = []
            head = total
        specs.append(TaskSpec(arrival=arrival, head_seconds=head,
                              child_seconds=child_seconds,
                              service_calls=service_calls))
    return specs


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (random.Random has no built-in)."""
    if lam <= 0:
        return 0
    limit = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def workload_statistics(specs: List[TaskSpec]) -> Dict[str, float]:
    """Aggregate statistics in the paper's Section 5 terms."""
    if not specs:
        return {}
    computes = [s.total_compute for s in specs]
    fibers = sum(s.fiber_count for s in specs)
    return {
        "tasks": len(specs),
        "fibers": fibers,
        "fibers_per_task": fibers / len(specs),
        "min_seconds": min(computes),
        "max_seconds": max(computes),
        "mean_seconds": sum(computes) / len(computes),
        "serial_hours": sum(computes) / 3600.0,
    }
