"""The paper-calibrated production day (Section 5).

"A typical 24-hour period will see around 10,000 new top-level tasks
comprising about 45,000 individual fibers.  Tasks during this period
may run for as long as 12 hours or as little as 20 milliseconds, with
the average being about a minute.  If these 10,000 tasks were run
back-to-back, they would require about 190 hours to complete."

:func:`run_production_day` drives a scaled version of that day through
a Vinz cluster and reports both the generated-workload statistics
(which should match the quoted numbers) and the execution outcome
(throughput, concurrency, utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..bluebox.messagequeue import ReplyTo
from ..vinz.api import VinzEnvironment
from .generators import TaskSpec, WorkloadProfile, generate_tasks, \
    workload_statistics

#: Paper constants (Section 5)
PAPER_TASKS_PER_DAY = 10_000
PAPER_FIBERS_PER_DAY = 45_000
PAPER_MIN_SECONDS = 0.020
PAPER_MAX_SECONDS = 12 * 3600.0
PAPER_MEAN_SECONDS = 60.0
PAPER_SERIAL_HOURS = 190.0
DAY_SECONDS = 24 * 3600.0

#: The generic batch workflow every synthetic task runs.  ``compute``
#: charges simulated seconds; optional non-blocking service calls hit
#: the synthetic DataStore service; the optional fanout is a for-each.
BATCH_WORKFLOW_SOURCE = """
(deflink DS :wsdl "urn:datastore-service")

(defun main (params)
  (let ((head   (getf params :head-seconds))
        (chunks (getf params :chunks))
        (calls  (getf params :service-calls)))
    (dotimes (i (or calls 0))
      (DS-Fetch-Method :Key i))
    (compute head)
    (if (consp chunks)
        (apply #'+ (for-each (c in chunks) (compute c) 1))
        0)))
"""


def datastore_service(latency: float = 0.05):
    """A synthetic backing service workflows call non-blockingly."""
    from ..bluebox.services import simple_service

    def fetch(ctx, body):
        ctx.charge(latency)
        return {"key": body.get("Key"), "value": "payload"}

    return simple_service("DataStore", {"Fetch": fetch},
                          namespace="urn:datastore-service",
                          parameters={"Fetch": ["Key"]})


@dataclass
class ProductionDayResult:
    """Everything the production-day bench reports."""

    generated: Dict[str, float]
    completed_tasks: int
    failed_tasks: int
    total_fibers: int
    makespan_hours: float
    peak_task_concurrency: int
    mean_task_concurrency: float
    peak_fiber_concurrency: int
    utilization: float
    queue_mean_wait: float
    cache_hit_rates: Dict[str, float]
    persist_writes: int
    #: the shared store's full stats snapshot (io_ops/io_seconds, and —
    #: for sharded/durable stores — per-shard and journal sections),
    #: the raw material of the store-scaling benchmark
    store_stats: Dict[str, Any] = field(default_factory=dict)
    #: tail of the queue-wait distribution (reservoir-sampled), the
    #: latency figure the scheduler benchmark compares
    queue_p99_wait: float = 0.0
    #: scheduling-subsystem summary (policy, governor, admission) when
    #: the run used one — see VinzEnvironment.summary()["sched"]
    sched: Dict[str, Any] = field(default_factory=dict)

    def rows(self) -> List[tuple]:
        """(metric, paper value, measured value) rows for reporting."""
        g = self.generated
        scale = g["tasks"] / PAPER_TASKS_PER_DAY
        return [
            ("tasks/day", PAPER_TASKS_PER_DAY, g["tasks"] / scale),
            ("fibers/day", PAPER_FIBERS_PER_DAY, self.total_fibers / scale),
            ("min task seconds", PAPER_MIN_SECONDS, g["min_seconds"]),
            ("max task seconds", PAPER_MAX_SECONDS, g["max_seconds"]),
            ("mean task seconds", PAPER_MEAN_SECONDS, g["mean_seconds"]),
            ("serial hours", PAPER_SERIAL_HOURS, g["serial_hours"] / scale),
            ("makespan hours (<24 required)", 24.0, self.makespan_hours),
            ("peak task concurrency", None, self.peak_task_concurrency),
            ("utilization", None, self.utilization),
        ]


def run_production_day(scale: float = 0.01, nodes: int = 12,
                       slots: int = 4, seed: int = 2010,
                       profile: Optional[WorkloadProfile] = None,
                       trace: bool = False,
                       store=None,
                       spawn_limit: Any = 8,
                       scheduler: Any = None,
                       admission: Any = None,
                       governor: Any = None) -> ProductionDayResult:
    """Run a ``scale``-sized production day and collect statistics.

    ``scale=0.01`` runs 100 tasks over a 0.24-hour virtual window with
    a proportionally smaller cluster — the shape (not the absolute
    numbers) is what reproduces.  ``store`` swaps the shared-store
    implementation (flat / sharded / durable) for the store-scaling
    benchmark.  ``spawn_limit`` (an int or ``"auto"`` for the adaptive
    governor) plus ``scheduler``/``admission``/``governor`` drive the
    scheduler benchmark's static-vs-adaptive comparison.
    """
    count = max(1, int(PAPER_TASKS_PER_DAY * scale))
    period = DAY_SECONDS * scale
    profile = profile or WorkloadProfile(
        mean_task_seconds=PAPER_SERIAL_HOURS * 3600 / PAPER_TASKS_PER_DAY)
    specs = generate_tasks(count, period, seed=seed, profile=profile)
    generated = workload_statistics(specs)

    env = VinzEnvironment(nodes=nodes, slots=slots, seed=seed, trace=trace,
                          store=store, scheduler=scheduler,
                          admission=admission, governor=governor)
    env.deploy_service(datastore_service())
    env.deploy_workflow("Batch", BATCH_WORKFLOW_SOURCE,
                        spawn_limit=spawn_limit, instruction_cost=1e-6)

    for spec in specs:
        env.cluster.kernel.schedule(
            spec.arrival,
            lambda s=spec: env.cluster.send(
                "Batch", "Start", {"params": s.to_params()},
                reply_to=ReplyTo(callback=lambda body: None)))
    env.cluster.run_until_idle()

    counts = env.registry.counts()
    makespan = env.cluster.kernel.now
    return ProductionDayResult(
        generated=generated,
        completed_tasks=counts.get("completed", 0),
        failed_tasks=counts.get("error", 0) + counts.get("terminated", 0),
        total_fibers=len(env.registry.fibers),
        makespan_hours=makespan / 3600.0,
        peak_task_concurrency=env.task_concurrency.peak,
        mean_task_concurrency=env.task_concurrency.mean_until(makespan),
        peak_fiber_concurrency=env.fiber_concurrency.peak,
        utilization=env.cluster.utilization(),
        queue_mean_wait=env.cluster.queue.mean_wait(),
        cache_hit_rates=env.cache_hit_rates(),
        persist_writes=env.counters.get("persist.writes"),
        store_stats=env.store.stats_snapshot(),
        queue_p99_wait=env.cluster.queue.wait_percentile(0.99),
        sched=env.summary()["sched"],
    )
