"""Durable storage for task histories: CRC-framed batches on the store.

Each committed operation window appends one batch per task under
``history//<task-id>/<n>``.  When the shared store is a durable
(window-capable) store, these writes ride the existing group-commit
journal like any other key — history durability costs no extra fsync
plane.  A batch frame is ``magic + u32 len + u32 crc + payload`` (the
same framing the write-ahead journal uses), so a torn tail — the writer
died inside ``write(2)`` — is *detectable*: the length or checksum will
not line up.

The read side fails closed: any tear, gap or CRC mismatch surfaces as a
typed :exc:`HistoryCorruptionError` subclass rather than a silently
truncated (and therefore wrong) history.  Replay would otherwise happily
rebuild a fiber from half its life and diverge — or worse, not diverge.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List

from ..bluebox.store import StoreError
from ..vinz.persistence import crc_frame, parse_crc_frames
from .recorder import SCHEMA_VERSION, HistoryEvent

#: frame magic for the history plane (journal uses its own)
HISTORY_MAGIC = b"GZH1"


class HistoryLogError(RuntimeError):
    """Base class for history-plane failures."""


class HistoryCorruptionError(HistoryLogError):
    """A history batch failed its integrity check — the stream cannot
    be trusted past this point and replay must not proceed."""

    def __init__(self, task_id: str, batch: int, reason: str):
        super().__init__(f"history of {task_id} corrupt at batch "
                         f"{batch}: {reason}")
        self.task_id = task_id
        self.batch = batch
        self.reason = reason


class TornHistoryError(HistoryCorruptionError):
    """The history's tail batch is torn (crash mid-append)."""


class DroppedBatchError(HistoryCorruptionError):
    """A mid-stream batch is missing (sequence gap) — a dropped write."""


class HistoryLog:
    """Batched, CRC-framed history storage on a shared-store plane."""

    #: batch appends survive this many transient store failures before
    #: the error propagates (history runs in the window's completion
    #: hook, *after* commit — there is no message redelivery left to
    #: retry it, so the append must absorb transient faults itself)
    WRITE_ATTEMPTS = 3

    def __init__(self, store, metrics=None):
        self.store = store
        self.metrics = metrics
        #: optional FaultInjector (set by ``FaultInjector.install``):
        #: consulted before every batch write for HistoryFault damage
        self.injector = None
        #: next batch index per task
        self._next_batch: Dict[str, int] = {}
        self.batches_written = 0
        self.bytes_written = 0
        self.write_retries = 0

    @staticmethod
    def _key(task_id: str, index: int) -> str:
        return f"history//{task_id}/{index:08d}"

    # -- write side -----------------------------------------------------

    def append_batch(self, task_id: str, events: List[HistoryEvent],
                     codec) -> None:
        """Append one committed window's events for ``task_id``.

        Payloads are serialized through the workflow's fiber codec so
        anything a fiber can hold (GozerFunctions included) round-trips,
        and byte-for-byte deterministically — the property the
        recorder-determinism test pins down.
        """
        encoded = [(e.seq, e.kind, e.fiber, codec.dumps(e.payload))
                   for e in events]
        payload = pickle.dumps((SCHEMA_VERSION, encoded), protocol=4)
        blob = crc_frame(payload, HISTORY_MAGIC)
        index = self._next_batch.get(task_id, 0)
        self._next_batch[task_id] = index + 1
        key = self._key(task_id, index)
        if self.injector is not None:
            blob = self.injector.on_history_write(key, blob)
            if blob is None:
                return  # dropped-batch fault: the write never lands
        # A failed append would leave a permanent gap at this index —
        # read_task fails closed on gaps, so the whole history would be
        # unreplayable over one transient store hiccup.  Other store
        # writes get retried by message redelivery; this one runs after
        # the window committed, so it retries here.  The write is
        # idempotent (same key, same bytes), and a persistent outage
        # still surfaces: the last error propagates.
        for attempt in range(self.WRITE_ATTEMPTS):
            try:
                self.store.write(key, blob)
                break
            except StoreError:
                self.write_retries += 1
                if self.metrics is not None and self.metrics.enabled:
                    self.metrics.counter("history.write_retries").inc()
                if attempt == self.WRITE_ATTEMPTS - 1:
                    raise
        self.batches_written += 1
        self.bytes_written += len(blob)
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter("history.batches").inc()
            self.metrics.counter("history.bytes").inc(len(blob))

    # -- read side ------------------------------------------------------

    def read_task(self, task_id: str, codec) -> List[HistoryEvent]:
        """Read and verify the full event stream of one task.

        Fails closed: torn frames, CRC mismatches and sequence gaps all
        raise typed errors.  A gap means a batch was dropped mid-stream;
        a tear means the final append was cut short — either way the
        suffix cannot be trusted.
        """
        events: List[HistoryEvent] = []
        index = 0
        while True:
            key = self._key(task_id, index)
            if not self.store.exists(key):
                break
            blob = self.store.read(key)
            payloads, _, tail_error = parse_crc_frames(blob, HISTORY_MAGIC)
            if tail_error is not None or len(payloads) != 1:
                raise TornHistoryError(task_id, index,
                                       tail_error or "empty-frame")
            try:
                version, encoded = pickle.loads(payloads[0])
            except Exception as exc:  # pragma: no cover - CRC catches most
                raise HistoryCorruptionError(task_id, index,
                                             f"undecodable batch: {exc}")
            if version != SCHEMA_VERSION:
                raise HistoryCorruptionError(
                    task_id, index, f"schema version {version} "
                    f"(expected {SCHEMA_VERSION})")
            for seq, kind, fiber, payload_blob in encoded:
                events.append(HistoryEvent(seq, kind, fiber,
                                           codec.loads(payload_blob)))
            index = index + 1
        # a dropped batch leaves a hole: either the batch index stops
        # short of what the writer appended, or (defense in depth) the
        # per-task sequence numbers have a gap
        highest = self._next_batch.get(task_id, index)
        if index < highest:
            raise DroppedBatchError(task_id, index, "missing batch")
        for position, event in enumerate(events):
            if event.seq != position:
                raise DroppedBatchError(
                    task_id, index,
                    f"sequence gap: expected seq {position}, "
                    f"found {event.seq}")
        return events

    # -- introspection --------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return {
            "batches_written": self.batches_written,
            "log_bytes": self.bytes_written,
            "write_retries": self.write_retries,
        }
