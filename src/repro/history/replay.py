"""Deterministic replay: rebuild any fiber from its event history.

The GVM is deterministic; everything nondeterministic a fiber ever
observes flows through its :class:`~repro.vinz.service.FiberExecution`
(fork targets, service responses, mailbox pops, clock reads, RNG
draws) and is recorded by the history plane.  Replay therefore
re-executes the fiber's *actual bytecode* window by window — a fresh VM
per advancement, exactly like the live service — with a
:class:`ReplayExecution` standing in for the live bridge: every
intrinsic that would touch the outside world instead consumes the next
recorded event and returns the recorded value.

Two consumers:

* **recovery** — :meth:`ReplayEngine.rebuild` reconstructs a crashed
  fiber's continuation at its current version, either from the task's
  start (``recovery="replay"``: no continuation snapshot is ever read)
  or forward from the latest SnapshotTaken base (``snapshot_interval >
  1``: the skipped versions between snapshots are recomputed);
* **verification** — :meth:`ReplayEngine.replay_task` re-runs every
  fiber of a finished task against its durable log and checks each
  recorded suspension and terminal outcome, raising
  :exc:`ReplayDivergenceError` at the *first* mismatched event.

A divergence means the runtime was nondeterministic somewhere the
recorder did not intercept — precisely the bug class event sourcing
exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bluebox.services import ServiceFault
from ..gvm.conditions import UnhandledConditionError
from ..gvm.futures import enter_fiber_thread
from ..gvm.vm import Done, Yielded
from ..lang.errors import GozerRuntimeError
from ..lang.symbols import Symbol
from ..vinz import distribution
from ..vinz.service import deliver_collected
from .recorder import (
    FIBER_COMPLETED,
    FIBER_FAILED,
    FIBER_FORKED,
    FIBER_SUSPENDED,
    HistoryEvent,
    MESSAGE_DELIVERED,
    NONDET_RECORDED,
    RESUME_KINDS,
    TASK_STARTED,
)

_S = Symbol

#: kinds the per-fiber cursor consumes (everything else is audit)
_CONSUMABLE = set((NONDET_RECORDED, FIBER_FORKED, FIBER_SUSPENDED,
                   FIBER_COMPLETED, FIBER_FAILED) + RESUME_KINDS)


class ReplayError(RuntimeError):
    """Base class for replay failures."""


class IncompleteHistoryError(ReplayError):
    """The history ends before the fiber's recorded life does — e.g. a
    dropped tail batch left a finished fiber with no terminal event."""


class ReplayDivergenceError(ReplayError):
    """Replayed execution disagrees with the recorded history.

    Pinpoints the *first* mismatched event: ``task``/``fiber`` locate
    the stream, ``seq`` the recorded event (or the position where one
    was missing), ``expected`` what the history says happened and
    ``actual`` what re-execution produced.
    """

    def __init__(self, task: str, fiber: str, seq: Optional[int],
                 expected: str, actual: str):
        super().__init__(
            f"replay of {fiber} ({task}) diverged at event "
            f"{'<end>' if seq is None else seq}: "
            f"recorded {expected}, replayed {actual}")
        self.task = task
        self.fiber = fiber
        self.seq = seq
        self.expected = expected
        self.actual = actual


@dataclass
class ReplayReport:
    """What one task's verification replay covered."""

    task: str
    fibers_replayed: int = 0
    windows: int = 0
    events_consumed: int = 0
    instructions: int = 0
    #: fibers whose stream ends suspended (swept by task termination):
    #: replayed up to their last recorded suspension, no terminal check
    partial_fibers: List[str] = field(default_factory=list)


class _Cursor:
    """Ordered consumption of one fiber's decision events."""

    def __init__(self, task_id: str, fiber_id: str,
                 events: List[HistoryEvent]):
        self.task_id = task_id
        self.fiber_id = fiber_id
        self.events = events
        self.pos = 0

    def exhausted(self) -> bool:
        return self.pos >= len(self.events)

    def diverge(self, expected: str, actual: str) -> "ReplayDivergenceError":
        seq = self.events[self.pos].seq if not self.exhausted() else None
        return ReplayDivergenceError(self.task_id, self.fiber_id, seq,
                                     expected, actual)

    def next(self, *kinds: str) -> HistoryEvent:
        if self.exhausted():
            raise ReplayDivergenceError(
                self.task_id, self.fiber_id, None,
                "<no further events>", f"attempt to consume {kinds}")
        event = self.events[self.pos]
        if event.kind not in kinds:
            raise self.diverge(event.kind, f"attempt to consume {kinds}")
        self.pos += 1
        return event


def _values_equal(codec, recorded: Any, replayed: Any) -> bool:
    """Structural equality through the codec: recorded values already
    round-tripped through it, so serializing both sides is the honest
    comparison (GozerFunctions, conditions and keywords included)."""
    if recorded is replayed:
        return True
    try:
        if recorded == replayed:
            return True
    except Exception:  # pragma: no cover - exotic __eq__
        pass
    try:
        return codec.dumps(recorded) == codec.dumps(replayed)
    except Exception:  # pragma: no cover - unserializable replay value
        return False


class _Stub:
    """Minimal ``.id``-bearing stand-in for task/fiber records."""

    __slots__ = ("id", "spawn_limit")

    def __init__(self, id: str):
        self.id = id
        self.spawn_limit = None


class ReplayExecution:
    """The replay-side twin of :class:`FiberExecution`.

    Same surface, opposite data flow: where the live bridge performs an
    effect and records the outcome, this one consumes the recorded
    outcome and performs nothing.  Any call the history cannot satisfy
    is a divergence.
    """

    def __init__(self, service, cursor: _Cursor):
        self.service = service
        self.cursor = cursor
        self.task = _Stub(cursor.task_id)
        self.fiber = _Stub(cursor.fiber_id)
        self.vm = None
        self.charged = 0.0
        #: chain groups reconstructed from FiberForked(chain) events
        self.chain_groups: Dict[str, List[str]] = {}

    # -- recorded nondeterminism ---------------------------------------

    def nondet(self, op: str, thunk=None) -> Any:
        event = self.cursor.next(NONDET_RECORDED)
        recorded_op = event.payload.get("op")
        if recorded_op != op:
            raise ReplayDivergenceError(
                self.cursor.task_id, self.cursor.fiber_id, event.seq,
                f"nondet {recorded_op!r}", f"nondet {op!r}")
        return event.payload.get("value")

    def clock_now(self) -> float:  # pragma: no cover - never called
        raise ReplayError("replay must read the clock from history")

    def random_draw(self, n):  # pragma: no cover - never called
        raise ReplayError("replay must draw randomness from history")

    # -- fiber management ----------------------------------------------

    def fork(self, fn, args, notify_parent: bool) -> str:
        event = self.cursor.next(FIBER_FORKED)
        if "chain" in event.payload:
            raise self.cursor.diverge("fork-chain", "fork")
        return event.payload["child"]

    def fork_chain(self, fn, items) -> str:
        event = self.cursor.next(FIBER_FORKED)
        if "chain" not in event.payload:
            raise self.cursor.diverge("fork", "fork-chain")
        group_id = event.payload["chain"]
        self.chain_groups[group_id] = list(event.payload["children"])
        return group_id

    def collect_chain(self, vm, group_id: str) -> List[Any]:
        children = self.chain_groups.get(group_id)
        if children is None:
            raise GozerRuntimeError(f"no chain group {group_id}")
        return self.collect_results(vm, children)

    def collect_results(self, vm, child_ids: List[str]) -> List[Any]:
        triples = self.nondet("collect")
        return deliver_collected(vm, child_ids, triples)

    def join_sync(self, pid: str) -> Any:
        return self.nondet("join-sync")

    def awake(self, pid: str, payload: Any) -> None:
        self.nondet("awake")

    def send_fiber_message(self, pid: str, value: Any) -> None:
        self.nondet("send-message")

    def auto_chunk_size(self) -> int:
        return self.nondet("auto-chunk")

    def try_receive(self) -> Any:
        return self.nondet("try-receive")

    # -- spawn limit ----------------------------------------------------

    def spawn_limit(self) -> int:
        return self.nondet("spawn-limit")

    def set_spawn_limit(self, n: int) -> int:
        # pure given its input: mirrors the live clamp, mutates nothing
        self.task.spawn_limit = max(1, n)
        return self.task.spawn_limit

    def auto_spawn_limit(self) -> int:
        return self.nondet("auto-spawn-limit")

    # -- task variables --------------------------------------------------

    def get_task_var(self, name: str) -> Any:
        return self.nondet(f"taskvar-get/{name}")

    def set_task_var(self, name: str, value: Any) -> Any:
        if name not in self.service.task_var_defaults:
            raise GozerRuntimeError(f"undeclared task variable ^{name}^")
        self.nondet(f"taskvar-set/{name}")
        return value

    # -- service calls ---------------------------------------------------

    def call_sync(self, soap_action: str, values) -> Any:
        return self.nondet(f"call-sync/{soap_action}")

    # -- misc ------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        self.charged += float(seconds)


class ReplayEngine:
    """Replays fibers from history: recovery rebuilds + verification."""

    def __init__(self, env):
        self.env = env

    # -- event access ----------------------------------------------------

    def _service_for(self, task_id: str):
        task = self.env.registry.tasks.get(task_id)
        if task is None:
            raise ReplayError(f"no such task {task_id}")
        service = self.env.workflows.get(task.workflow)
        if service is None:  # pragma: no cover - undeployed workflow
            raise ReplayError(f"workflow {task.workflow} not deployed")
        return service

    @staticmethod
    def _fiber_stream(events: List[HistoryEvent],
                      fiber_id: str) -> List[HistoryEvent]:
        """The decision events one fiber consumes, in order.  Mailbox
        *appends* (audit flavour of MessageDelivered) are skipped: the
        value reaches the fiber via a later resume event."""
        out = []
        for event in events:
            if event.fiber != fiber_id or event.kind not in _CONSUMABLE:
                continue
            if event.kind == MESSAGE_DELIVERED and event.payload.get("append"):
                continue
            out.append(event)
        return out

    @staticmethod
    def _start_of(events: List[HistoryEvent],
                  fiber_id: str) -> Tuple[Any, List[Any], bool]:
        """How ``fiber_id`` began: ``(fn_or_None, args, is_root)``.

        Children get their start thunk from the parent's FiberForked
        payload — the history-plane copy of the cloned closure, so a
        from-scratch rebuild touches no store key at all.
        """
        for event in events:
            if event.kind != FIBER_FORKED:
                continue
            payload = event.payload
            if payload.get("child") == fiber_id:
                return payload["fn"], list(payload.get("args") or []), False
            if "chain" in payload and fiber_id in payload["children"]:
                index = payload["children"].index(fiber_id)
                return payload["fn"], [payload["items"][index]], False
        return None, [], True

    # -- one fiber --------------------------------------------------------

    def _run_window(self, service, execution: ReplayExecution, thunk):
        """Execute one advancement window exactly as ``_advance_locked``
        does, mapping the same exception set to the same outcomes."""
        try:
            outcome = thunk()
        except distribution.VinzBreak:
            return "completed", None
        except distribution.VinzTerminateTask as term:
            return "failed", term.reason
        except UnhandledConditionError as exc:
            return "failed", str(exc.condition)
        except ServiceFault as fault:
            return "failed", f"{fault.qname}: {fault.message}"
        if isinstance(outcome, Done):
            return "completed", outcome.value
        assert isinstance(outcome, Yielded)
        return "suspended", outcome

    def replay_fiber(self, service, task_id: str,
                     task_events: List[HistoryEvent],
                     fiber_id: str, stop_version: Optional[int] = None,
                     base=None,
                     report: Optional[ReplayReport] = None):
        """Re-execute one fiber against its recorded stream.

        * ``stop_version`` — return the live continuation the moment
          the replayed fiber suspends at that version (recovery mode);
          ``None`` replays to the stream's end (verification mode).
        * ``base`` — ``(continuation, version)``: fast-forward the
          cursor to that suspension and resume from the given
          continuation instead of re-running from the task start.

        Returns ``(kind, value, instructions)`` where kind is
        ``"continuation"`` / ``"completed"`` / ``"failed"`` /
        ``"partial"`` (stream ended suspended — fiber swept by task
        termination).
        """
        cursor = _Cursor(task_id, fiber_id,
                         self._fiber_stream(task_events, fiber_id))
        execution = ReplayExecution(service, cursor)
        instructions = 0

        def fresh_vm():
            vm = service.runtime.new_vm(allow_yield=True)
            vm.vinz = execution
            execution.vm = vm
            return vm

        cv_token = distribution.CURRENT_EXECUTION.set(execution)
        enter_fiber_thread()
        try:
            if base is not None:
                continuation, base_version = base
                # fast-forward: everything up to (and including) the
                # base suspension already happened before the snapshot
                while True:
                    event = cursor.next(*_CONSUMABLE)
                    if event.kind == FIBER_SUSPENDED \
                            and event.payload.get("version") == base_version:
                        break
                state, value = "suspended", None
                outcome = None
            else:
                fn, args, is_root = self._start_of(task_events, fiber_id)
                if is_root:
                    main = service.runtime.global_env.lookup_or(
                        _S(service.main_name))
                    started = [e for e in task_events
                               if e.kind == TASK_STARTED]
                    params = started[0].payload.get("params") \
                        if started else None
                    fn, args = main, [params]
                vm = fresh_vm()
                state, value = self._run_window(
                    service, execution,
                    lambda: service._run_top_call(vm, fn, list(args)))
                instructions += vm.instruction_count
                outcome = value if state == "suspended" else None
                if report is not None:
                    report.windows += 1

            while True:
                if state == "suspended" and outcome is not None:
                    descriptor = outcome.value \
                        if isinstance(outcome.value, dict) else \
                        {"kind": "await"}
                    event = cursor.next(FIBER_SUSPENDED)
                    recorded_why = event.payload.get("why")
                    if recorded_why != descriptor.get("kind", "await"):
                        raise ReplayDivergenceError(
                            cursor.task_id, fiber_id, event.seq,
                            f"suspend on {recorded_why!r}",
                            f"suspend on {descriptor.get('kind')!r}")
                    if stop_version is not None \
                            and event.payload.get("version") == stop_version:
                        return "continuation", outcome.continuation, \
                            instructions
                    continuation = outcome.continuation
                elif state == "suspended":
                    continuation = base[0]  # first window after a base
                else:
                    # terminal: verify against the recorded terminal
                    recorded = cursor.next(FIBER_COMPLETED, FIBER_FAILED)
                    expected_kind = FIBER_COMPLETED \
                        if state == "completed" else FIBER_FAILED
                    if recorded.kind != expected_kind:
                        raise ReplayDivergenceError(
                            cursor.task_id, fiber_id, recorded.seq,
                            recorded.kind, expected_kind)
                    if state == "completed":
                        if not _values_equal(service.codec,
                                             recorded.payload.get("result"),
                                             value):
                            raise ReplayDivergenceError(
                                cursor.task_id, fiber_id, recorded.seq,
                                f"result {recorded.payload.get('result')!r}",
                                f"result {value!r}")
                    else:
                        if recorded.payload.get("error") != value:
                            raise ReplayDivergenceError(
                                cursor.task_id, fiber_id, recorded.seq,
                                f"error {recorded.payload.get('error')!r}",
                                f"error {value!r}")
                    if not cursor.exhausted():
                        raise cursor.diverge(
                            "<further events>",
                            f"terminal {expected_kind} already reached")
                    return state, value, instructions

                # the fiber is suspended: the next event resumes it —
                # unless the stream ends here (swept by termination)
                if cursor.exhausted():
                    if stop_version is not None:
                        raise IncompleteHistoryError(
                            f"history of {fiber_id} ends before version "
                            f"{stop_version}")
                    if report is not None:
                        report.partial_fibers.append(fiber_id)
                    return "partial", None, instructions
                resume = cursor.next(*RESUME_KINDS)
                vm = fresh_vm()
                state, value = self._run_window(
                    service, execution,
                    lambda: vm.resume(continuation,
                                      resume.payload.get("value")))
                instructions += vm.instruction_count
                outcome = value if state == "suspended" else None
                if report is not None:
                    report.windows += 1
        finally:
            if report is not None:
                report.events_consumed += cursor.pos
                report.instructions += instructions
            distribution.CURRENT_EXECUTION.reset(cv_token)

    # -- recovery: rebuild a live continuation ---------------------------

    def rebuild(self, service, fiber, target_version: int,
                base=None) -> Tuple[Any, int]:
        """Rebuild ``fiber``'s continuation at ``target_version`` from
        the in-memory committed history (optionally forward from a
        ``(continuation, version)`` snapshot base).  Returns
        ``(continuation, instructions_executed)``."""
        recorder = self.env.history
        events = recorder.events_of(fiber.task_id)
        metrics = self.env.cluster.metrics
        tracer = self.env.cluster.tracer
        span = 0
        if tracer.enabled:
            span = tracer.begin("history.replay", kind="history",
                                start=self.env.cluster.kernel.now,
                                fiber=fiber.id, task=fiber.task_id,
                                mode="rebuild", target=target_version)
        try:
            kind, value, instructions = self.replay_fiber(
                service, fiber.task_id, events, fiber.id,
                stop_version=target_version, base=base)
        finally:
            if span:
                tracer.end(span, end=self.env.cluster.kernel.now)
        if kind != "continuation":  # pragma: no cover - guarded by caller
            raise ReplayError(
                f"rebuild of {fiber.id} reached {kind} before version "
                f"{target_version}")
        if metrics.enabled:
            metrics.counter("history.rebuilds").inc()
            metrics.counter("history.rebuild_instructions").inc(instructions)
        return value, instructions

    # -- verification: replay a whole task -------------------------------

    def replay_task(self, task_id: str,
                    source: str = "log") -> ReplayReport:
        """Replay every fiber of ``task_id`` against its history and
        verify each recorded outcome; raises
        :exc:`ReplayDivergenceError` at the first mismatch.

        ``source`` selects the event stream: ``"log"`` reads (and
        integrity-checks) the durable batches — the verification mode
        CI uses — while ``"memory"`` uses the recorder's mirror.
        """
        service = self._service_for(task_id)
        if source == "log":
            events = self.env.history_log.read_task(task_id, service.codec)
        else:
            events = self.env.history.events_of(task_id)
        report = ReplayReport(task=task_id)
        fiber_ids = []
        seen = set()
        for event in events:
            if event.fiber and event.fiber not in seen:
                seen.add(event.fiber)
                fiber_ids.append(event.fiber)
        metrics = self.env.cluster.metrics
        tracer = self.env.cluster.tracer
        span = 0
        if tracer.enabled:
            span = tracer.begin("history.replay", kind="history",
                                start=self.env.cluster.kernel.now,
                                task=task_id, mode="verify",
                                fibers=len(fiber_ids))
        try:
            for fiber_id in fiber_ids:
                self.replay_fiber(service, task_id, events, fiber_id,
                                  report=report)
                report.fibers_replayed += 1
        except ReplayDivergenceError:
            if metrics.enabled:
                metrics.counter("history.divergences").inc()
            raise
        finally:
            if span:
                tracer.end(span, end=self.env.cluster.kernel.now)
            if metrics.enabled:
                metrics.counter("history.replays").inc()
        return report
