"""Typed, versioned task-history events and the recorder that emits them.

Gozer's durability story (paper Section 4.2) persists whole fiber
continuations on every suspension: the snapshot is both the audit trail
and the only recovery path.  Modern engines (Durable Functions /
Netherite) instead *event-source* each task: an append-only history of
every nondeterministic decision a task made — fork targets, delivered
messages, service responses, clock reads — is enough to rebuild any
fiber by re-executing its deterministic bytecode and feeding the
recorded decisions back in.  Snapshots become an optimization taken
every N suspensions instead of every one.

:class:`HistoryRecorder` is the write side.  Events are buffered per
operation window and committed by a completion hook, so an aborted
window (node crash, store fault, fencing rejection) leaves no trace —
history only ever describes *committed* execution, exactly like the
fiber state it shadows.  Committed events are mirrored in memory (the
live rebuild path) and appended, CRC-framed, to the
:class:`~repro.history.log.HistoryLog` plane of the shared store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: bump when event payload shapes change; stored in every batch frame
SCHEMA_VERSION = 1

# -- event kinds ------------------------------------------------------------

TASK_STARTED = "task-started"
FIBER_FORKED = "fiber-forked"
MESSAGE_DELIVERED = "message-delivered"
SERVICE_REQUESTED = "service-requested"
SERVICE_COMPLETED = "service-completed"
TIMER_FIRED = "timer-fired"
FIBER_JOINED = "fiber-joined"
NONDET_RECORDED = "nondet"
FIBER_SUSPENDED = "fiber-suspended"
SNAPSHOT_TAKEN = "snapshot-taken"
FIBER_COMPLETED = "fiber-completed"
FIBER_FAILED = "fiber-failed"

#: kinds that resume a suspended fiber (carry the resume value)
RESUME_KINDS = (SERVICE_COMPLETED, TIMER_FIRED, FIBER_JOINED,
                MESSAGE_DELIVERED)

#: kinds the replay cursor skips: audit markers that carry no decision
#: the re-executing bytecode consumes (mailbox appends are consumed via
#: a later resume event; snapshot markers only locate rebuild bases)
AUDIT_KINDS = (TASK_STARTED, SERVICE_REQUESTED, SNAPSHOT_TAKEN)


def resume_kind_for(waiting_on: Optional[str]) -> str:
    """Classify a resume event by what the fiber was suspended on."""
    if waiting_on == "service-call":
        return SERVICE_COMPLETED
    if waiting_on == "sleep":
        return TIMER_FIRED
    if waiting_on in ("join", "await"):
        return FIBER_JOINED
    return MESSAGE_DELIVERED


class HistoryEvent:
    """One recorded decision: ``(seq, kind, fiber, payload)``.

    ``seq`` is the per-task sequence number assigned at commit time;
    ``fiber`` is ``None`` for task-scoped events (TaskStarted).
    """

    __slots__ = ("seq", "kind", "fiber", "payload")

    def __init__(self, seq: int, kind: str, fiber: Optional[str],
                 payload: Dict[str, Any]):
        self.seq = seq
        self.kind = kind
        self.fiber = fiber
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HistoryEvent(seq={self.seq}, kind={self.kind!r}, "
                f"fiber={self.fiber!r}, payload={self.payload!r})")


class HistoryRecorder:
    """The write side of the history plane.

    One per :class:`~repro.vinz.api.VinzEnvironment` (when
    ``history="on"``).  ``record`` buffers the event on the operation
    window; the window's completion hook assigns sequence numbers and
    appends one batch per task to the log — the abort hook discards the
    buffer, so rolled-back windows record nothing.
    """

    def __init__(self, env, log):
        self.env = env
        self.log = log
        #: committed events per task (the live rebuild path reads this
        #: mirror; ``replay_task`` reads the durable log instead)
        self.histories: Dict[str, List[HistoryEvent]] = {}
        self._seqs: Dict[str, int] = {}

    # -- recording ------------------------------------------------------

    def record(self, ctx, task_id: str, kind: str,
               fiber: Optional[str] = None, **payload: Any) -> None:
        entry = (task_id, kind, fiber, payload)
        on_complete = getattr(ctx, "on_complete", None)
        if on_complete is None:
            # out-of-band context (dead-letter handling): there is no
            # window to be transactional with — commit immediately
            self._commit([entry])
            return
        buffer = getattr(ctx, "_history_buffer", None)
        if buffer is None:
            buffer = []
            ctx._history_buffer = buffer
            on_complete(lambda: self._commit(buffer))
            ctx.on_abort(buffer.clear)
        buffer.append(entry)

    def _commit(self, entries: List[Tuple]) -> None:
        if not entries:
            return
        by_task: Dict[str, List[HistoryEvent]] = {}
        for task_id, kind, fiber, payload in entries:
            seq = self._seqs.get(task_id, 0)
            self._seqs[task_id] = seq + 1
            event = HistoryEvent(seq, kind, fiber, payload)
            self.histories.setdefault(task_id, []).append(event)
            by_task.setdefault(task_id, []).append(event)
        registry = self.env.registry
        metrics = self.env.cluster.metrics
        for task_id, events in by_task.items():
            task = registry.tasks.get(task_id)
            workflow = self.env.workflows.get(task.workflow) \
                if task is not None else None
            if workflow is None:  # pragma: no cover - task swept mid-commit
                continue
            self.log.append_batch(task_id, events, workflow.codec)
            if metrics.enabled:
                metrics.counter("history.events").inc(len(events))

    # -- introspection --------------------------------------------------

    def events_of(self, task_id: str) -> List[HistoryEvent]:
        return list(self.histories.get(task_id, ()))

    def summary(self) -> Dict[str, Any]:
        return {
            "tasks_recorded": len(self.histories),
            "events": sum(self._seqs.values()),
            **self.log.summary(),
        }
