"""Event-sourced task histories and deterministic replay.

The third leg of the durability story, next to ``persistsnap`` and
``vinz/recovery``: every nondeterministic decision a task makes is
recorded as a typed event (``recorder``), persisted as CRC-framed
batches on the shared store (``log``), and any fiber can be rebuilt —
or a whole finished task *verified* — by re-executing its bytecode with
the recorded decisions fed back in (``replay``).

Only :mod:`.recorder` is imported eagerly: :mod:`.log` pulls in the
vinz persistence framing and :mod:`.replay` the workflow service
itself, so both load lazily to keep ``vinz -> history -> vinz`` from
becoming a cycle.
"""

from .recorder import (
    AUDIT_KINDS,
    FIBER_COMPLETED,
    FIBER_FAILED,
    FIBER_FORKED,
    FIBER_JOINED,
    FIBER_SUSPENDED,
    MESSAGE_DELIVERED,
    NONDET_RECORDED,
    RESUME_KINDS,
    SCHEMA_VERSION,
    SERVICE_COMPLETED,
    SERVICE_REQUESTED,
    SNAPSHOT_TAKEN,
    TASK_STARTED,
    TIMER_FIRED,
    HistoryEvent,
    HistoryRecorder,
    resume_kind_for,
)

_LAZY = {
    "HistoryLog": "log",
    "HistoryLogError": "log",
    "HistoryCorruptionError": "log",
    "TornHistoryError": "log",
    "DroppedBatchError": "log",
    "HISTORY_MAGIC": "log",
    "ReplayEngine": "replay",
    "ReplayError": "replay",
    "ReplayReport": "replay",
    "ReplayDivergenceError": "replay",
    "IncompleteHistoryError": "replay",
}

__all__ = [
    "AUDIT_KINDS", "FIBER_COMPLETED", "FIBER_FAILED", "FIBER_FORKED",
    "FIBER_JOINED", "FIBER_SUSPENDED", "MESSAGE_DELIVERED",
    "NONDET_RECORDED", "RESUME_KINDS", "SCHEMA_VERSION",
    "SERVICE_COMPLETED", "SERVICE_REQUESTED", "SNAPSHOT_TAKEN",
    "TASK_STARTED", "TIMER_FIRED", "HistoryEvent", "HistoryRecorder",
    "resume_kind_for", *sorted(_LAZY),
]


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)
