"""Incremental continuation snapshots with chunk-level dedup.

Snapshot format v2: a suspended fiber's serialized state is split into
content-defined chunks, stored content-addressed with refcounts, and
the fiber's state key holds a small manifest of chunk digests — only
new or changed chunks are written per suspension.  See
``docs/persistence.md`` for the format and failure modes.
"""

from .chunker import (DEFAULT_AVG_BITS, DEFAULT_MAX_SIZE, DEFAULT_MIN_SIZE,
                      chunk_spans)
from .chunkstore import CHUNK_PREFIX, REF_PREFIX, ChunkStore
from .errors import (ChunkCorruptionError, ManifestFormatError,
                     MissingChunkError, SnapshotError, StateDigestError,
                     TornManifestError)
from .manifest import (ENC_DEFLATE, ENC_RAW, FORMAT_VERSION, MANIFEST_MAGIC,
                       ChunkRef, Manifest, content_digest, decode_manifest,
                       encode_manifest, is_manifest)
from .pipeline import SnapshotPipeline, SnapshotWrite

__all__ = [
    "CHUNK_PREFIX",
    "REF_PREFIX",
    "DEFAULT_AVG_BITS",
    "DEFAULT_MAX_SIZE",
    "DEFAULT_MIN_SIZE",
    "ENC_DEFLATE",
    "ENC_RAW",
    "FORMAT_VERSION",
    "MANIFEST_MAGIC",
    "ChunkCorruptionError",
    "ChunkRef",
    "ChunkStore",
    "Manifest",
    "ManifestFormatError",
    "MissingChunkError",
    "SnapshotError",
    "SnapshotPipeline",
    "SnapshotWrite",
    "StateDigestError",
    "TornManifestError",
    "chunk_spans",
    "content_digest",
    "decode_manifest",
    "encode_manifest",
    "is_manifest",
]
