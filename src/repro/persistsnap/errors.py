"""Typed failure modes of the incremental-snapshot plane.

Every way a v2 snapshot can fail to restore has its own exception
class, and every one of them is a :class:`~repro.bluebox.store.StoreError`
subclass: the platform treats a detected-corrupt snapshot exactly like
a failed store IO — the operation window aborts, state rolls back, and
the message retries per its policy (or dead-letters, failing the fiber
through the condition system).  What can never happen is a *wrong-value*
restore: corruption is always detected (manifest CRC, per-chunk digest,
whole-state digest) before any state reaches the GVM.

All errors carry the fiber id and snapshot format version when the
caller supplied them, so an operator reading a dead-letter report knows
*which* fiber's state is bad and in *which* format it was written.
"""

from __future__ import annotations

from typing import Optional

from ..bluebox.store import StoreError


class SnapshotError(StoreError):
    """Base class for incremental-snapshot (v2) failures.

    Detected mid-fiber these tunnel through the GVM (they are platform
    IO problems, not program conditions) and abort the operation window
    for a policy-driven retry.
    """

    tunnels_through_vm = True

    def __init__(self, message: str, fiber_id: Optional[str] = None,
                 fmt: str = "v2"):
        if fiber_id is not None:
            message = f"{message} (fiber={fiber_id}, format={fmt})"
        super().__init__(message)
        self.fiber_id = fiber_id
        self.format = fmt

    def __str__(self) -> str:  # StoreError is a KeyError; avoid repr quoting
        return self.args[0]


class TornManifestError(SnapshotError):
    """The manifest blob is truncated or fails its CRC frame — the
    writer died mid-write (or the storage tore the block)."""


class ManifestFormatError(SnapshotError):
    """The manifest parsed but its layout is not one this reader
    understands (unknown version byte, impossible entry counts)."""


class MissingChunkError(SnapshotError):
    """A manifest references a chunk the store no longer holds."""


class ChunkCorruptionError(SnapshotError):
    """A chunk's payload failed its integrity check (inflate error,
    length mismatch, or content-digest mismatch)."""


class StateDigestError(SnapshotError):
    """Every chunk verified individually but the reassembled state does
    not match the manifest's whole-state digest (e.g. reordered or
    substituted entries in a manifest whose frame was re-checksummed)."""
