"""The v2 snapshot manifest: a content-addressed recipe for a fiber.

A manifest replaces the v1 monolithic blob at the fiber's state key.
It names the chunks (by content digest) whose concatenation, after
per-chunk decompression, is the fiber's serialized state — plus enough
integrity metadata that *any* corruption is detected before a byte of
restored state reaches the GVM.

Pinned wire layout (the golden-file test asserts these bytes exactly;
bump ``FORMAT_VERSION`` and keep a reader for the old layout if it ever
changes)::

    blob  := b"GZS2" | u32 body_len | u32 crc32(body) | body
    body  := u8 version(=2) | u8 codec_byte | 16B state_digest
             | u32 raw_len | u16 nchunks | nchunks * entry
    entry := 16B chunk_digest | u32 raw_len | u32 stored_len | u8 enc

All integers little-endian.  ``state_digest`` is blake2b-128 of the
whole serialized state; ``chunk_digest`` blake2b-128 of the chunk's
*raw* (uncompressed) bytes — content addressing and integrity check in
one.  ``enc`` is 0 (stored raw) or 1 (raw-deflate, the paper's codec).
The CRC frame makes a torn manifest write detectable exactly like a
torn journal record.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass
from typing import List, Tuple

from .errors import ManifestFormatError, TornManifestError

MANIFEST_MAGIC = b"GZS2"
FORMAT_VERSION = 2

ENC_RAW = 0
ENC_DEFLATE = 1

DIGEST_SIZE = 16

_FRAME = struct.Struct("<II")          # body_len, crc32(body)
_HEADER = struct.Struct("<BB16sIH")    # version, codec, state_digest, raw_len, nchunks
_ENTRY = struct.Struct("<16sIIB")      # digest, raw_len, stored_len, enc


def content_digest(data: bytes) -> bytes:
    """The 128-bit content address used for chunks and whole states."""
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


@dataclass(frozen=True)
class ChunkRef:
    """One manifest entry: which chunk, how big, how encoded."""

    digest: bytes
    raw_len: int
    stored_len: int
    enc: int

    @property
    def hex(self) -> str:
        return self.digest.hex()


@dataclass(frozen=True)
class Manifest:
    """A decoded v2 manifest."""

    codec_byte: bytes
    state_digest: bytes
    raw_len: int
    chunks: Tuple[ChunkRef, ...]

    @property
    def hex_digest(self) -> str:
        return self.state_digest.hex()


def encode_manifest(codec_byte: bytes, state_digest: bytes, raw_len: int,
                    chunks: List[ChunkRef]) -> bytes:
    body = _HEADER.pack(FORMAT_VERSION, codec_byte[0], state_digest,
                        raw_len, len(chunks))
    body += b"".join(_ENTRY.pack(c.digest, c.raw_len, c.stored_len, c.enc)
                     for c in chunks)
    return (MANIFEST_MAGIC
            + _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
            + body)


def is_manifest(blob: bytes) -> bool:
    """Cheap magic sniff: is this blob a v2 manifest (vs a v1 blob)?"""
    return blob[:4] == MANIFEST_MAGIC


def decode_manifest(blob: bytes, fiber_id=None) -> Manifest:
    """Decode and integrity-check a manifest blob.

    Raises :class:`TornManifestError` for truncation/CRC damage and
    :class:`ManifestFormatError` for a well-framed body this reader
    does not understand.  Never returns a partially-decoded manifest.
    """
    if blob[:4] != MANIFEST_MAGIC:
        raise ManifestFormatError("not a v2 snapshot manifest",
                                  fiber_id=fiber_id)
    frame_end = 4 + _FRAME.size
    if len(blob) < frame_end:
        raise TornManifestError("manifest torn inside its frame header",
                                fiber_id=fiber_id)
    body_len, crc = _FRAME.unpack(blob[4:frame_end])
    body = blob[frame_end:frame_end + body_len]
    if len(body) < body_len:
        raise TornManifestError(
            f"manifest torn: frame promises {body_len} body bytes, "
            f"{len(body)} present", fiber_id=fiber_id)
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise TornManifestError("manifest CRC mismatch", fiber_id=fiber_id)
    if len(body) < _HEADER.size:
        raise ManifestFormatError("manifest body shorter than its header",
                                  fiber_id=fiber_id)
    version, codec, state_digest, raw_len, nchunks = \
        _HEADER.unpack(body[:_HEADER.size])
    if version != FORMAT_VERSION:
        raise ManifestFormatError(
            f"unknown snapshot format version {version}", fiber_id=fiber_id)
    expected = _HEADER.size + nchunks * _ENTRY.size
    if len(body) != expected:
        raise ManifestFormatError(
            f"manifest body is {len(body)} bytes, {expected} expected "
            f"for {nchunks} chunks", fiber_id=fiber_id)
    chunks = []
    offset = _HEADER.size
    for _ in range(nchunks):
        digest, c_raw, c_stored, enc = _ENTRY.unpack(
            body[offset:offset + _ENTRY.size])
        if enc not in (ENC_RAW, ENC_DEFLATE):
            raise ManifestFormatError(f"unknown chunk encoding {enc}",
                                      fiber_id=fiber_id)
        chunks.append(ChunkRef(digest, c_raw, c_stored, enc))
        offset += _ENTRY.size
    return Manifest(bytes([codec]), state_digest, raw_len, tuple(chunks))
