"""The incremental continuation-snapshot pipeline (format v2).

v1 persistence rewrites a fiber's whole compressed blob on every
suspension.  v2 splits the serialized state into content-defined
chunks, stores each chunk once (content-addressed, refcounted) and
persists the suspension as a small *manifest* of chunk digests — so a
fiber suspending twenty times around a loop rewrites the few chunks
its mutation actually touched, not its whole continuation.  This is
the incremental-state-capture lever Netherite demonstrates for
durable-workflow throughput, applied to Gozer's hottest path.

Responsibilities are split with the workflow service:

* the pipeline serializes, chunks, compresses (adaptive per-chunk raw
  deflate with a skip heuristic for incompressible chunks), writes new
  chunks + refcounts, and builds the manifest blob;
* the service writes the manifest at the fiber's state key (so the
  existing abort-undo machinery rolls it back untouched), charges the
  returned IO cost to the operation window, registers the pipeline's
  ``undo`` (on abort) and ``release`` (on commit) callables, and emits
  the ``snap.*`` spans.

Every refcount mutation is a real store write, so inside an operation
window it rides the durable store's group-commit journal batch —
chunk GC is literally "refcount decrement in the journal".
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..bluebox.store import StoreError
from .chunker import (DEFAULT_AVG_BITS, DEFAULT_MAX_SIZE, DEFAULT_MIN_SIZE,
                      chunk_spans)
from .chunkstore import ChunkStore
from .errors import (ChunkCorruptionError, MissingChunkError,
                     StateDigestError)
from .manifest import (ENC_DEFLATE, ENC_RAW, ChunkRef, Manifest,
                       content_digest, decode_manifest, encode_manifest,
                       is_manifest)

#: skip-compression heuristic: a chunk whose first-KiB sample uses more
#: than this many distinct byte values is almost certainly incompressible
#: (already-compressed or encrypted payload data) — don't burn deflate
#: CPU discovering that.
ENTROPY_SKIP_DISTINCT = 250

#: compression must save at least 10% or the chunk is stored raw: a
#: marginal ratio is not worth the inflate cost on every restore.
MIN_SAVINGS_NUM, MIN_SAVINGS_DEN = 9, 10


@dataclass
class SnapshotWrite:
    """Everything the service needs from one incremental persist."""

    blob: bytes                 # the manifest, ready for the state key
    manifest: Manifest
    raw_len: int                # serialized state size before chunking
    chunk_bytes_written: int    # physical chunk payload bytes written
    chunks_new: int
    chunks_reused: int
    cost: float                 # store IO cost of chunk + refcount writes
    #: roll the chunk plane back exactly (abort path); safe to call once
    undo: Callable[[], None] = field(repr=False, default=lambda: None)
    #: drop the references the *prior* manifest held beyond this one
    #: (commit path); GC's chunks whose refcount reaches zero
    release: Callable[[], None] = field(repr=False, default=lambda: None)


class SnapshotPipeline:
    """Chunked, deduplicated, adaptively compressed fiber snapshots."""

    def __init__(self, codec, store, metrics=None,
                 min_size: int = DEFAULT_MIN_SIZE,
                 avg_bits: int = DEFAULT_AVG_BITS,
                 max_size: int = DEFAULT_MAX_SIZE):
        self.codec = codec
        self.store = store
        self.chunks = ChunkStore.for_store(store)
        self.metrics = metrics
        self.min_size = min_size
        self.avg_bits = avg_bits
        self.max_size = max_size
        #: per-chunk deflate level; tracks the codec choice — ``none``
        #: means the operator asked for no compression at all
        self.compress_level = 0 if codec.codec == "none" else 3
        #: consulted on chunk reads (missing-chunk / corrupt-chunk
        #: faults); set by the service from the installed injector
        self.injector = None
        # statistics
        self.encodes = 0
        self.decodes = 0
        self.raw_bytes = 0
        self.written_bytes = 0     # physical: new chunks + manifests
        self.logical_bytes = 0     # what v1 would have rewritten
        self.compress_skipped = 0  # entropy heuristic fired
        self.compress_futile = 0   # tried, savings under threshold
        self.release_skipped = 0   # GC vetoed by store fault (orphans)
        self.chunks_new_total = 0
        self.chunks_reused_total = 0  # deduped: diffed-away or present

    # ------------------------------------------------------------------
    # encode: state -> chunks + manifest
    # ------------------------------------------------------------------

    def encode(self, key: str, state, fiber_id: Optional[str] = None,
               raw: Optional[bytes] = None) -> SnapshotWrite:
        """Persist ``state`` incrementally against whatever manifest is
        currently at ``key``.

        Writes only chunks the store does not already hold; returns the
        manifest blob for the service to write at ``key``, plus undo /
        release callables for the window's abort / commit hooks.
        """
        if raw is None:
            raw = self.codec.serialize_state(state)
        state_digest = content_digest(raw)
        spans = chunk_spans(raw, self.min_size, self.avg_bits, self.max_size)

        prior = self._prior_counts(key)
        refs: List[ChunkRef] = []
        undo_records: List[Tuple[str, Optional[bytes], bool]] = []
        new_counts: Counter = Counter()
        cost = 0.0
        written = 0
        chunks_new = 0
        chunks_reused = 0
        payload_cache = {}
        for span in spans:
            digest = content_digest(span)
            hexd = digest.hex()
            if hexd not in payload_cache:
                payload_cache[hexd] = self._encode_chunk(span)
            payload, enc = payload_cache[hexd]
            refs.append(ChunkRef(digest, len(span), len(payload), enc))
            new_counts[hexd] += 1
            # only reference-count the *difference* against the prior
            # manifest: an unchanged chunk costs zero store writes
            if new_counts[hexd] > prior.get(hexd, 0):
                try:
                    add_cost, created, prev_ref = self.chunks.add(hexd,
                                                                  payload)
                except StoreError:
                    # a failed add mid-encode aborts the whole persist
                    # before any undo hook exists — unwind the adds
                    # this call already made, or they leak past the
                    # window abort
                    for done_hex, prev, was_new in reversed(undo_records):
                        self.chunks.rollback_add(done_hex, prev, was_new)
                    raise
                cost += add_cost
                undo_records.append((hexd, prev_ref, created))
                if created:
                    written += len(payload)
                    chunks_new += 1
                else:
                    chunks_reused += 1
            else:
                chunks_reused += 1

        blob = encode_manifest(self.codec.NAMES[self.codec.codec],
                               state_digest, len(raw), refs)
        manifest = Manifest(self.codec.NAMES[self.codec.codec],
                            state_digest, len(raw), tuple(refs))

        # references the prior manifest holds beyond the new one are
        # dropped only after the window commits (never mid-window: an
        # abort must find the plane exactly as it was)
        stale = prior - new_counts

        def undo(records=undo_records):
            for hexd, prev_ref, created in reversed(records):
                self.chunks.rollback_add(hexd, prev_ref, created)

        def release(stale=stale):
            self._release_counts(stale)

        self.encodes += 1
        self.raw_bytes += len(raw)
        self.logical_bytes += len(raw)
        self.written_bytes += written + len(blob)
        self.chunks_new_total += chunks_new
        self.chunks_reused_total += chunks_reused
        self._publish_encode_metrics(written + len(blob), chunks_new,
                                     chunks_reused)
        return SnapshotWrite(blob=blob, manifest=manifest, raw_len=len(raw),
                             chunk_bytes_written=written,
                             chunks_new=chunks_new,
                             chunks_reused=chunks_reused, cost=cost,
                             undo=undo, release=release)

    def _prior_counts(self, key: str) -> Counter:
        """Chunk-occurrence counts of the manifest currently at ``key``
        (empty for absent keys and v1 blobs).  An uncounted peek — the
        prior blob is this node's own just-read state, not new IO."""
        prev = self.store.snapshot_value(key)
        if prev is None or not is_manifest(prev):
            return Counter()
        try:
            manifest = decode_manifest(prev)
        except StoreError:
            return Counter()  # torn prior manifest: nothing to diff against
        return Counter(ref.hex for ref in manifest.chunks)

    def _encode_chunk(self, span: bytes) -> Tuple[bytes, int]:
        """Adaptive per-chunk compression: raw deflate (the paper's
        codec) unless the chunk looks — or proves — incompressible."""
        if self.compress_level <= 0:
            return span, ENC_RAW
        sample = span[:1024]
        if len(sample) >= 256 and len(set(sample)) > ENTROPY_SKIP_DISTINCT:
            self.compress_skipped += 1
            return span, ENC_RAW
        packed = zlib.compress(span, self.compress_level)
        if packed is None or \
                len(packed) * MIN_SAVINGS_DEN >= len(span) * MIN_SAVINGS_NUM:
            self.compress_futile += 1
            return span, ENC_RAW
        return packed, ENC_DEFLATE

    # ------------------------------------------------------------------
    # decode: manifest -> chunks -> state
    # ------------------------------------------------------------------

    def read_manifest(self, blob: bytes,
                      fiber_id: Optional[str] = None) -> Manifest:
        return decode_manifest(blob, fiber_id=fiber_id)

    def fetch_state(self, manifest: Manifest,
                    fiber_id: Optional[str] = None) -> Tuple[bytes, float]:
        """Fetch, verify and reassemble the serialized state.

        Every failure mode is a typed :class:`SnapshotError`; a byte
        that fails any check never reaches the caller.  Returns the raw
        state and the store IO cost of the chunk reads.
        """
        parts: List[bytes] = []
        cost = 0.0
        for ref in manifest.chunks:
            payload = self.chunks.get(ref.hex)
            if self.injector is not None:
                payload = self.injector.on_chunk_read(
                    ChunkStore.chunk_key(ref.hex), payload)
            if payload is None:
                raise MissingChunkError(
                    f"chunk {ref.hex[:12]} referenced by manifest is "
                    f"missing from the store", fiber_id=fiber_id)
            cost += self.store.cost(len(payload))
            if len(payload) != ref.stored_len:
                raise ChunkCorruptionError(
                    f"chunk {ref.hex[:12]} is {len(payload)} stored bytes, "
                    f"manifest says {ref.stored_len}", fiber_id=fiber_id)
            if ref.enc == ENC_DEFLATE:
                try:
                    span = zlib.decompress(payload)
                except zlib.error as exc:
                    raise ChunkCorruptionError(
                        f"chunk {ref.hex[:12]} failed to inflate: {exc}",
                        fiber_id=fiber_id) from exc
            else:
                span = payload
            if len(span) != ref.raw_len or content_digest(span) != ref.digest:
                raise ChunkCorruptionError(
                    f"chunk {ref.hex[:12]} content does not match its "
                    f"digest", fiber_id=fiber_id)
            parts.append(span)
        raw = b"".join(parts)
        if len(raw) != manifest.raw_len or \
                content_digest(raw) != manifest.state_digest:
            raise StateDigestError(
                "reassembled state does not match the manifest's "
                "whole-state digest", fiber_id=fiber_id)
        self.decodes += 1
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter("snap.restores").inc()
        return raw, cost

    def load(self, blob: bytes, fiber_id: Optional[str] = None):
        """Convenience: manifest blob all the way back to a state."""
        manifest = self.read_manifest(blob, fiber_id=fiber_id)
        raw, _cost = self.fetch_state(manifest, fiber_id=fiber_id)
        return self.codec.deserialize_state(raw, fiber_id=fiber_id,
                                            fmt="v2")

    # ------------------------------------------------------------------
    # release: fiber completion / reclamation
    # ------------------------------------------------------------------

    def release_blob(self, blob: bytes) -> None:
        """Drop every chunk reference a manifest holds (the fiber is
        done; its state key is being reclaimed).  Tolerates a torn
        manifest — there is nothing to release from a write that never
        finished."""
        if not is_manifest(blob):
            return
        try:
            manifest = decode_manifest(blob)
        except StoreError:
            return
        self._release_counts(Counter(ref.hex for ref in manifest.chunks))

    def _release_counts(self, counts: Counter) -> None:
        """Best-effort decrefs, GC at zero.  A vetoed store op (fault
        injection) orphans the chunk rather than failing the completion
        path — exactly the `_reclaim` trade."""
        for hexd, occurrences in counts.items():
            for _ in range(occurrences):
                try:
                    self.chunks.release(hexd)
                except StoreError:
                    self.release_skipped += 1
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.gauge("snap.chunkstore_bytes").set(
                self.chunks.bytes_stored)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def _publish_encode_metrics(self, written: int, new: int,
                                reused: int) -> None:
        if self.metrics is None or not self.metrics.enabled:
            return
        self.metrics.counter("snap.encodes").inc()
        self.metrics.counter("snap.bytes_written").inc(written)
        self.metrics.counter("snap.chunks_new").inc(new)
        self.metrics.counter("snap.chunks_reused").inc(reused)
        self.metrics.gauge("snap.chunkstore_bytes").set(
            self.chunks.bytes_stored)
        if self.written_bytes:
            self.metrics.gauge("snap.dedup_ratio").set(
                self.logical_bytes / self.written_bytes)

    @property
    def dedup_ratio(self) -> float:
        """Logical (v1-equivalent) bytes over physical bytes written."""
        return (self.logical_bytes / self.written_bytes
                if self.written_bytes else 1.0)

    def stats_snapshot(self) -> dict:
        stats = dict(self.chunks.stats_snapshot())
        stats.update({
            "encodes": self.encodes,
            "decodes": self.decodes,
            "raw_bytes": self.raw_bytes,
            "written_bytes": self.written_bytes,
            "dedup_ratio": round(self.dedup_ratio, 3),
            "compress_skipped": self.compress_skipped,
            "compress_futile": self.compress_futile,
            "release_skipped": self.release_skipped,
            # per-suspension view: how many chunk slots were served by
            # dedup (either unchanged vs the prior manifest or already
            # in the plane) vs physically written
            "chunks_new": self.chunks_new_total,
            "chunks_reused": self.chunks_reused_total,
        })
        return stats
