"""The content-addressed chunk plane with reference counting.

Chunks live in the ordinary shared store (and therefore in the durable
store's journal, when one is configured) under ``snapchunk/<digest>``;
each chunk's reference count lives beside it under ``snapref/<digest>``
as a little-endian u32.  Refcount mutations are real store writes, so
inside an operation window they ride the window's group-commit journal
batch — a fiber completing decrements its chunks *in the journal*, and
crash recovery replays exactly the committed refcount state.

Reference counts are read through an in-memory cache (hydrated lazily
with uncounted peeks, like the lock manager's metadata): every node in
the simulation shares the store object, so the cache is just the
store-side index a real implementation would keep per storage plane.
Mutations always write through.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

CHUNK_PREFIX = "snapchunk/"
REF_PREFIX = "snapref/"

_REF = struct.Struct("<I")


class ChunkStore:
    """Refcounted content-addressed chunks over a shared store."""

    def __init__(self, store):
        self.store = store
        #: hex digest -> cached refcount (write-through)
        self._refs: Dict[str, int] = {}
        #: hex digest -> stored payload length (for the size gauge)
        self._sizes: Dict[str, int] = {}
        # statistics
        self.chunks_written = 0
        self.chunks_reused = 0
        self.chunks_deleted = 0
        self.bytes_stored = 0

    @classmethod
    def for_store(cls, store) -> "ChunkStore":
        """The chunk plane living on ``store`` (one per store, shared by
        every workflow service, so dedup works across deployments)."""
        plane = getattr(store, "_chunk_plane", None)
        if plane is None:
            plane = cls(store)
            store._chunk_plane = plane
        return plane

    @staticmethod
    def chunk_key(hex_digest: str) -> str:
        return CHUNK_PREFIX + hex_digest

    @staticmethod
    def ref_key(hex_digest: str) -> str:
        return REF_PREFIX + hex_digest

    # -- refcount bookkeeping ---------------------------------------------

    def refcount(self, hex_digest: str) -> int:
        cached = self._refs.get(hex_digest)
        if cached is not None:
            return cached
        raw = self.store.snapshot_value(self.ref_key(hex_digest))
        count = _REF.unpack(raw)[0] if raw else 0
        self._refs[hex_digest] = count
        return count

    def _write_ref(self, hex_digest: str, count: int) -> float:
        cost = self.store.write(self.ref_key(hex_digest), _REF.pack(count))
        self._refs[hex_digest] = count
        return cost

    # -- the write path ---------------------------------------------------

    def add(self, hex_digest: str,
            payload: bytes) -> Tuple[float, bool, Optional[bytes]]:
        """Reference ``payload`` under its digest.

        Writes the chunk only when it is not already stored; always
        increments the refcount.  Returns ``(io_cost, created,
        prev_ref_bytes)`` — the last two are what an abort-undo needs to
        put the plane back exactly.
        """
        prev = self.refcount(hex_digest)
        prev_bytes = _REF.pack(prev) if prev else None
        cost = 0.0
        created = False
        if prev == 0 or not self.store.exists(self.chunk_key(hex_digest)):
            cost += self.store.write(self.chunk_key(hex_digest), payload)
            created = True
            self.chunks_written += 1
            self.bytes_stored += len(payload)
            self._sizes[hex_digest] = len(payload)
        else:
            self.chunks_reused += 1
        cost += self._write_ref(hex_digest, prev + 1)
        return cost, created, prev_bytes

    def rollback_add(self, hex_digest: str, prev_ref: Optional[bytes],
                     created: bool) -> None:
        """Abort-undo for one :meth:`add`: restore the refcount value
        and remove a chunk this window created.  Uses ``rollback_value``
        so a journaled store also scrubs the keys from its open batch."""
        self.store.rollback_value(self.ref_key(hex_digest), prev_ref)
        self._refs[hex_digest] = _REF.unpack(prev_ref)[0] if prev_ref else 0
        if created:
            self.store.rollback_value(self.chunk_key(hex_digest), None)
            self.chunks_written -= 1
            self.bytes_stored -= self._sizes.pop(hex_digest, 0)

    # -- the release path (GC) --------------------------------------------

    def release(self, hex_digest: str) -> float:
        """Drop one reference; delete the chunk when none remain.

        The decrement (or the deletes) are ordinary store mutations:
        inside an operation window they join its journal batch, which
        is how "GC via refcount decrement in the journal" composes with
        crash recovery.
        """
        count = self.refcount(hex_digest)
        if count <= 1:
            cost = self.store.delete(self.chunk_key(hex_digest))
            cost += self.store.delete(self.ref_key(hex_digest))
            self._refs[hex_digest] = 0
            self.chunks_deleted += 1
            self.bytes_stored -= self._sizes.pop(hex_digest, 0)
            return cost
        return self._write_ref(hex_digest, count - 1)

    # -- reads ------------------------------------------------------------

    def get(self, hex_digest: str) -> Optional[bytes]:
        """The stored payload, or ``None`` when the plane lost it.
        Charged by the caller via the returned payload's size."""
        key = self.chunk_key(hex_digest)
        if not self.store.exists(key):
            return None
        return self.store.read(key)

    # -- reporting ---------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, int]:
        return {
            "chunks_written": self.chunks_written,
            "chunks_reused": self.chunks_reused,
            "chunks_deleted": self.chunks_deleted,
            "bytes_stored": self.bytes_stored,
        }
