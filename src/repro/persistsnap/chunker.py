"""Content-defined chunking: stable boundaries under mutation.

A suspended fiber's serialized state changes a little on every
suspension — the top frame's pc and operand stack, the tail of an
accumulator — while most of the stream (deep frames, shared
environments, task parameters) is byte-identical to the previous
version.  Fixed-size chunking would shift every boundary after an
insertion; content-defined chunking (the FastCDC/gear-hash family used
by dedup stores) cuts wherever a rolling hash of the *content* hits a
pattern, so unchanged regions keep their exact chunk boundaries no
matter how the bytes around them moved.

The gear table is generated from a fixed seed: chunk boundaries — and
therefore chunk digests, manifests and the golden-file test — are
deterministic across runs and platforms.
"""

from __future__ import annotations

import random
from typing import List

_MASK64 = (1 << 64) - 1

#: the gear table: 256 pseudo-random 64-bit words from a pinned seed.
#: Changing this seed changes every chunk boundary (and breaks dedup
#: against previously written snapshots) — treat it as format v2 state.
_GEAR_SEED = 0x476F7A32  # "Goz2"
_gear_rng = random.Random(_GEAR_SEED)
_GEAR = tuple(_gear_rng.getrandbits(64) for _ in range(256))
del _gear_rng

#: default chunking geometry: ~256 B average chunks, bounded to
#: [64 B, 2 KiB].  Fiber blobs run under a KiB to a few tens of KiB and
#: mutate in a small region per suspension, so the geometry trades two
#: costs: coarser chunks rewrite more unchanged bytes around every
#: edit, finer chunks pay more manifest entries (25 B each, on *every*
#: persist) and compress worse.  A sweep over captured suspension
#: streams put the minimum of (rewritten chunk + manifest) bytes here —
#: ~2.6x fewer persisted bytes per suspension than whole-blob v1 on the
#: loop-heavy benchmark, vs ~1.8x at a 512 B average.
DEFAULT_MIN_SIZE = 64
DEFAULT_AVG_BITS = 8
DEFAULT_MAX_SIZE = 2048


def chunk_spans(data: bytes, min_size: int = DEFAULT_MIN_SIZE,
                avg_bits: int = DEFAULT_AVG_BITS,
                max_size: int = DEFAULT_MAX_SIZE) -> List[bytes]:
    """Split ``data`` into content-defined chunks.

    Invariants (property-tested):

    * ``b"".join(chunk_spans(data)) == data`` — lossless;
    * every chunk except possibly the last is within
      ``[min_size, max_size]``;
    * a boundary depends only on the ``min_size``-to-boundary window of
      content, so regions far from an edit keep their boundaries.
    """
    if min_size <= 0 or max_size < min_size:
        raise ValueError("need 0 < min_size <= max_size")
    n = len(data)
    if n == 0:
        return []
    mask = (1 << avg_bits) - 1
    chunks: List[bytes] = []
    start = 0
    while start < n:
        end = min(start + max_size, n)
        if end - start <= min_size:
            chunks.append(data[start:end])
            break
        h = 0
        cut = end
        # the rolling hash warms up over the first min_size bytes but
        # may only cut after them
        boundary_from = start + min_size
        for i in range(start, end):
            h = ((h << 1) + _GEAR[data[i]]) & _MASK64
            if i >= boundary_from and (h & mask) == 0:
                cut = i + 1
                break
        chunks.append(data[start:cut])
        start = cut
    return chunks
