"""The durable store: group commit over a write-ahead journal.

:class:`DurableStore` is a :class:`~repro.durastore.sharded.ShardedStore`
whose mutations are additionally funnelled through a
:class:`~repro.durastore.journal.WriteAheadJournal`.  Its one performance
idea is **group commit**: every write and delete issued inside one
operation window defers its per-operation latency, and the window's
whole mutation set commits as a single journal append.  A window that
persisted a continuation, wrote three fork thunks and reclaimed a task
env pays one ``op_latency`` instead of five — the Gozer filer's ~2 ms
per-op cost amortized exactly the way Netherite batches partition
updates into one commit-log IO.

Window lifecycle (driven by the cluster):

1. ``begin_window()`` as the operation handler starts.
2. ``write``/``delete`` during the handler buffer journal records;
   state is applied to the backends immediately so reads in the same
   window see it.  Each charges only its byte cost.
3. ``seal_window()`` as the handler finishes: the batch is framed and
   the group-commit IO priced — the cost lands inside the window's
   simulated duration.
4. ``commit_batch(batch)`` when the window *completes*: the sealed
   frame is physically appended (this is where a torn-journal fault can
   strike).  A window aborted in between — node death, store fault —
   calls ``abort_window()``/``discard_batch()`` instead and the batch
   never reaches the log, so journal replay excludes it by
   construction: rollback and replay compose.

Mutations outside any window (task submission, dead-letter bookkeeping)
auto-commit as singleton batches, so the journal is always a complete
record of committed state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..bluebox.store import StoreError
from .backend import StoreBackend
from .journal import (
    OP_DELETE,
    OP_PUT,
    Record,
    SealedBatch,
    WriteAheadJournal,
    encode_batch,
)
from .sharded import ShardedStore


class DurableStore(ShardedStore):
    """A sharded store with a write-ahead journal and group commit."""

    def __init__(self, backends: Optional[Sequence[StoreBackend]] = None,
                 shards: int = 4,
                 journal: Optional[WriteAheadJournal] = None,
                 checkpoint_interval: int = 64,
                 commit_interval: Optional[float] = None, **kwargs):
        # the journal must exist before super().__init__ assigns
        # self.injector (the property setter mirrors it onto the journal)
        self.journal = journal if journal is not None else WriteAheadJournal()
        self.checkpoint_interval = checkpoint_interval
        super().__init__(backends=backends, shards=shards, **kwargs)
        #: group-commit horizon: a window sealing within this many
        #: simulated seconds of the last physical flush piggybacks on
        #: it (pays only its bytes).  Defaults to one ``op_latency`` —
        #: while a filer write is in flight, concurrent committers
        #: queue behind it and share the next IO.
        self.commit_interval = commit_interval \
            if commit_interval is not None else self.op_latency
        self._last_flush_at: Optional[float] = None
        #: records of the currently open operation window (None = no
        #: window open; windows never overlap — operation handlers run
        #: synchronously inside one kernel event)
        self._window: Optional[List[Record]] = None
        # group-commit statistics
        self.windows_sealed = 0
        self.windows_aborted = 0
        self.batches_committed = 0
        self.batches_discarded = 0
        self.deferred_ops = 0
        self.auto_commits = 0
        self.shared_flushes = 0
        self.recoveries = 0
        self.checkpoint_seconds = 0.0
        #: optional observability wiring (set by VinzEnvironment):
        #: recovery emits spans/metrics when these are attached
        self.tracer = None
        self.metrics = None
        self.now_fn = None

    # the injector consults both store IO and journal appends; mirror
    # assignments (FaultInjector.install sets env.store.injector) onto
    # the journal so torn-record faults reach it
    @property
    def injector(self):
        return self._injector

    @injector.setter
    def injector(self, value) -> None:
        self._injector = value
        if getattr(self, "journal", None) is not None:
            self.journal.injector = value

    # ------------------------------------------------------------------
    # the operation-window lifecycle
    # ------------------------------------------------------------------

    def begin_window(self) -> None:
        if self._window is not None:
            raise RuntimeError("operation window already open")
        self._window = []

    def in_window(self) -> bool:
        return self._window is not None

    def seal_window(self) -> Optional[SealedBatch]:
        """Frame the open window's mutations and price the group IO.

        Returns ``None`` for a window that mutated nothing (no IO, no
        cost).  The returned batch's ``cost`` is the *incremental* cost
        of the commit — one ``op_latency`` plus the byte cost of the
        frame overhead; the payload bytes were already charged as the
        writes happened — so window total = ``op_latency`` + framed
        bytes, versus N × (``op_latency`` + payload bytes) unjournaled.

        The second group-commit tier works *across* windows: when this
        seal lands within ``commit_interval`` of the last physical
        flush (a concurrent handler on another node just committed),
        the batch piggybacks on that in-flight IO — it pays only its
        bytes and the journal counts no new flush.
        """
        records = self._window
        self._window = None
        if not records:
            return None
        framed = encode_batch(records)
        payload = sum(len(value) for _op, _key, value in records
                      if value is not None)
        framing_cost = max(0, len(framed) - payload) * self.per_byte
        now = self.now_fn() if self.now_fn is not None else None
        shares = (now is not None and self._last_flush_at is not None
                  and now - self._last_flush_at < self.commit_interval)
        if shares:
            cost = framing_cost
            self.shared_flushes += 1
            self.io_seconds += cost
        else:
            cost = self.op_latency + framing_cost
            if now is not None:
                self._last_flush_at = now
            self._account(cost)
        self.windows_sealed += 1
        return SealedBatch(records, framed, cost, flushed=not shares)

    def abort_window(self) -> None:
        """Drop the open window's buffered records (store fault or node
        death mid-handler).  The caller's abort-undo hooks restore the
        backend state; nothing was journaled, so replay never sees it."""
        if self._window is not None:
            self._window = None
            self.windows_aborted += 1

    def commit_batch(self, batch: Optional[SealedBatch]) -> None:
        """Physically append a sealed batch — the group commit.

        Raises :class:`~repro.bluebox.store.StoreWriteError` when a
        torn-journal fault fires; the caller aborts the window (undo
        hooks roll the backends back) and the partial record is dropped
        by the next replay.
        """
        if batch is None:
            return
        self.journal.append_batch(batch)
        self.batches_committed += 1
        self._maybe_checkpoint()

    def discard_batch(self, batch: Optional[SealedBatch]) -> None:
        """A sealed batch whose window died before completing: it never
        reaches the log."""
        if batch is not None:
            self.batches_discarded += 1

    def _auto_commit(self, record: Record) -> None:
        """Out-of-window mutations journal as singleton batches."""
        batch = SealedBatch([record], encode_batch([record]), 0.0)
        self.journal.append_batch(batch)
        self.auto_commits += 1
        self._maybe_checkpoint()

    # ------------------------------------------------------------------
    # mutation API: defer op_latency inside windows
    # ------------------------------------------------------------------

    def write(self, key: str, data: bytes) -> float:
        if self._window is None:
            cost = super().write(key, data)
            self._auto_commit((OP_PUT, key, data))
            return cost
        if not isinstance(data, bytes):
            raise TypeError("store values must be bytes")
        self._consult_shard(key, write=True)
        self._consult_write(key)
        self._put(key, data)
        self.writes += 1
        self.bytes_written += len(data)
        self._window.append((OP_PUT, key, data))
        self.deferred_ops += 1
        # bytes still travel to the log; the op_latency is deferred to
        # the group commit at seal time
        cost = len(data) * self.per_byte
        self.io_seconds += cost
        stats = self.shard_stats[self.shard_for(key)]
        stats.writes += 1
        stats.bytes_written += len(data)
        stats.io_seconds += cost
        return cost

    def delete(self, key: str) -> float:
        if self._window is None:
            cost = super().delete(key)
            self._auto_commit((OP_DELETE, key, None))
            return cost
        self._consult_shard(key, write=True)
        self._consult_write(key)
        self._remove(key)
        self.deletes += 1
        self._window.append((OP_DELETE, key, None))
        self.deferred_ops += 1
        self.shard_stats[self.shard_for(key)].deletes += 1
        return 0.0

    def rollback_value(self, key: str, value: Optional[bytes]) -> None:
        """Abort-undo: restore the backend value *and* scrub the key
        from the open window, so a rolled-back write can never be
        journaled — rollback and replay compose."""
        self.restore_value(key, value)
        if self._window:
            self._window = [r for r in self._window if r[1] != key]

    # ------------------------------------------------------------------
    # checkpoint / compaction
    # ------------------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_interval and \
                self.journal.commits % self.checkpoint_interval == 0:
            self.run_checkpoint()

    def run_checkpoint(self) -> float:
        """Snapshot the key space into the journal and truncate the log.

        Background compaction: its IO cost is accounted on the store
        (``checkpoint_seconds``) but charged to no operation window —
        the paper-world filer does this off the critical path.
        """
        state = {key: self._get(key) for key in self._key_list()}
        frame_bytes = self.journal.checkpoint(state)
        cost = self.cost(frame_bytes)
        self._account(cost)
        self.checkpoint_seconds += cost
        return cost

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Rebuild backend state from the journal: exactly the
        committed batches, never a torn tail.

        Emits a ``recovery``-kind span and ``store.recovery.*`` metrics
        when a tracer/metrics registry is attached.  Returns a report::

            {"recovered_keys", "deleted_keys", "checkpoint_keys",
             "batches", "records", "tail_error", "tail_bytes_dropped",
             "replay_cost_s"}
        """
        now = self.now_fn() if self.now_fn is not None else 0.0
        span_id = 0
        if self.tracer is not None and self.tracer.enabled:
            span_id = self.tracer.begin("store.recover", "recovery", now,
                                        journal_bytes=self.journal.storage.size())
        replay = self.journal.replay()
        self.journal.repair_after_replay(replay)
        for backend in self.backends.values():
            for key in backend.keys():
                backend.remove(key)
        recovered = 0
        deleted = 0
        for key, value in replay["state"].items():
            if value is None:
                deleted += 1
            else:
                self._backend(key).put(key, value)
                recovered += 1
        cost = self.cost(self.journal.storage.size())
        self._account(cost)
        self.recoveries += 1
        report = {
            "recovered_keys": recovered,
            "deleted_keys": deleted,
            "checkpoint_keys": replay["checkpoint_keys"],
            "batches": replay["batches"],
            "records": replay["records"],
            "tail_error": replay["tail_error"],
            "tail_bytes_dropped": replay["tail_bytes_dropped"],
            "replay_cost_s": cost,
        }
        if span_id:
            if replay["tail_error"]:
                self.tracer.annotate(span_id, now, "journal.torn-tail",
                                     error=replay["tail_error"],
                                     bytes_dropped=replay["tail_bytes_dropped"])
            self.tracer.end(span_id, now + cost, **{
                k: v for k, v in report.items() if k != "replay_cost_s"})
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter("store.recovery.runs").inc()
            self.metrics.counter("store.recovery.keys").inc(recovered)
            self.metrics.counter("store.recovery.batches").inc(
                replay["batches"])
            if replay["tail_error"]:
                self.metrics.counter("store.recovery.torn_tails").inc()
        return report

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        snap = super().stats_snapshot()
        snap["journal"] = self.journal.stats_snapshot()
        snap["group_commit"] = {
            "windows_sealed": self.windows_sealed,
            "windows_aborted": self.windows_aborted,
            "batches_committed": self.batches_committed,
            "batches_discarded": self.batches_discarded,
            "deferred_ops": self.deferred_ops,
            "auto_commits": self.auto_commits,
            "shared_flushes": self.shared_flushes,
        }
        snap["recoveries"] = self.recoveries
        snap["checkpoint_seconds"] = self.checkpoint_seconds
        return snap
