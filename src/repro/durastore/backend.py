"""Storage backends: the raw byte planes shards are built from.

A :class:`StoreBackend` is deliberately dumber than
:class:`~repro.bluebox.store.SharedStore`: no cost model, no fault
hooks, no statistics — just named byte blobs.  The sharded store owns
policy (hashing, costs, faults, stats) and treats backends as
interchangeable planes, the way Netherite treats its partition stores.

Two implementations ship: :class:`MemoryBackend` (a dict — the
simulation workhorse) and :class:`DirectoryBackend` (a real directory,
for state that must survive a process boundary).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class StoreBackend(Protocol):
    """What the sharded store requires of one storage plane."""

    #: stable identity — shard-ring points hash this, so renaming a
    #: backend remaps its keys
    name: str

    def get(self, key: str) -> Optional[bytes]: ...

    def put(self, key: str, data: bytes) -> None: ...

    def remove(self, key: str) -> None: ...

    def contains(self, key: str) -> bool: ...

    def keys(self) -> List[str]: ...

    def nbytes(self) -> int:
        """Total payload bytes held (for rebalance reports)."""
        ...


class MemoryBackend:
    """An in-memory storage plane."""

    def __init__(self, name: str):
        self.name = name
        self._data: Dict[str, bytes] = {}

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: str, data: bytes) -> None:
        self._data[key] = data

    def remove(self, key: str) -> None:
        self._data.pop(key, None)

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data)

    def nbytes(self) -> int:
        return sum(len(v) for v in self._data.values())

    def __repr__(self) -> str:
        return f"<MemoryBackend {self.name} keys={len(self._data)}>"


class DirectoryBackend:
    """A storage plane mirrored onto a real directory.

    File naming reuses the escaped encoding of
    :class:`~repro.bluebox.store.DirectoryStore` (``%`` escaped first so
    the encoding inverts).  An in-memory view is hydrated from disk at
    construction, so a process that crashed mid-run can be picked up by
    a fresh backend over the same directory.
    """

    def __init__(self, name: str, root: str):
        self.name = name
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._data: Dict[str, bytes] = {}
        for fname in os.listdir(root):
            path = os.path.join(root, fname)
            if os.path.isfile(path) and not fname.endswith(".tmp"):
                with open(path, "rb") as fh:
                    self._data[self._decode_name(fname)] = fh.read()

    # same escaping as DirectoryStore — see the encode/decode inversion
    # property test
    @staticmethod
    def _encode_name(key: str) -> str:
        return key.replace("%", "%25").replace("/", "%2F")

    @staticmethod
    def _decode_name(name: str) -> str:
        return name.replace("%2F", "/").replace("%25", "%")

    def _path(self, key: str) -> str:
        return os.path.join(self.root, self._encode_name(key))

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: str, data: bytes) -> None:
        self._data[key] = data
        tmp = self._path(key) + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, self._path(key))

    def remove(self, key: str) -> None:
        self._data.pop(key, None)
        path = self._path(key)
        if os.path.exists(path):
            os.unlink(path)

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data)

    def nbytes(self) -> int:
        return sum(len(v) for v in self._data.values())

    def __repr__(self) -> str:
        return f"<DirectoryBackend {self.name} root={self.root!r}>"


def memory_backends(count: int) -> List[MemoryBackend]:
    """``count`` uniformly named in-memory planes."""
    return [MemoryBackend(f"shard-{i}") for i in range(count)]
