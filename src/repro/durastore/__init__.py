"""Durable sharded storage: pluggable backends, a consistent-hash ring,
a write-ahead journal with group commit, and crash recovery.

The paper's Vinz trusts one NFS filer for every fiber blob (Section
4.2); this package is the scale-out answer in the spirit of Netherite:
shard the key space over pluggable byte planes, funnel each operation
window's mutations through one journal append (group commit amortizes
the ~2 ms per-op latency), and reconstruct committed state by replaying
the journal after a crash — torn tails detected and dropped, committed
batches always recovered.

Everything slots in behind the :class:`~repro.bluebox.store.SharedStore`
API, so Vinz, the fiber cache, fault campaigns and the benchmarks work
unchanged on top of any of the three tiers::

    SharedStore            flat in-memory store (the seed model)
    └─ ShardedStore        consistent-hash over N StoreBackends
       └─ DurableStore     + write-ahead journal, group commit, recovery
"""

from .backend import (
    DirectoryBackend,
    MemoryBackend,
    StoreBackend,
    memory_backends,
)
from .journal import (
    BATCH_MAGIC,
    CHECKPOINT_MAGIC,
    FileJournalStorage,
    JOURNAL_MAGIC,
    MemoryJournalStorage,
    SealedBatch,
    WriteAheadJournal,
    encode_batch,
)
from .sharded import ShardedStore, ShardStats, VNODES
from .durable import DurableStore

__all__ = [
    "StoreBackend", "MemoryBackend", "DirectoryBackend", "memory_backends",
    "ShardedStore", "ShardStats", "VNODES",
    "WriteAheadJournal", "MemoryJournalStorage", "FileJournalStorage",
    "SealedBatch", "encode_batch",
    "JOURNAL_MAGIC", "BATCH_MAGIC", "CHECKPOINT_MAGIC",
    "DurableStore",
]
