"""Consistent-hash sharding over pluggable backends.

The paper's Vinz funnels every fiber blob through one NFS filer
(Section 4.2); Netherite's answer — partition the state space and give
each partition its own store — is what :class:`ShardedStore` builds.
Keys map to backends via a consistent-hash ring (virtual nodes per
shard), so adding or removing a shard moves only ~1/N of the keys; the
:meth:`add_shard` / :meth:`remove_shard` rebalance path migrates
exactly those keys and reports what it moved.

It is a drop-in :class:`~repro.bluebox.store.SharedStore`: the cost
model, statistics and fault hooks are inherited, with per-shard stats
and a shard-outage fault consultation layered on.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence

from ..bluebox.store import SharedStore, StoreError
from .backend import MemoryBackend, StoreBackend, memory_backends

#: virtual ring points per shard — enough that key distribution is even
#: within a few percent for realistic shard counts
VNODES = 64


def _hash64(data: str) -> int:
    return int.from_bytes(
        hashlib.md5(data.encode("utf-8")).digest()[:8], "big")


class ShardStats:
    """Per-shard IO accounting."""

    __slots__ = ("reads", "writes", "deletes", "bytes_read",
                 "bytes_written", "io_seconds")

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.io_seconds = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {s: getattr(self, s) for s in self.__slots__}


class ShardedStore(SharedStore):
    """A SharedStore whose key space is consistent-hashed over
    N :class:`~repro.durastore.backend.StoreBackend` planes."""

    def __init__(self, backends: Optional[Sequence[StoreBackend]] = None,
                 shards: int = 4, **kwargs):
        super().__init__(**kwargs)
        if backends is None:
            backends = memory_backends(shards)
        if not backends:
            raise ValueError("a sharded store needs at least one backend")
        self.backends: Dict[str, StoreBackend] = {}
        self.shard_stats: Dict[str, ShardStats] = {}
        self._ring: List[int] = []
        self._ring_shards: List[str] = []
        for backend in backends:
            self._admit(backend)
        self._rebuild_ring()
        # rebalance accounting (cumulative across add/remove calls)
        self.rebalances = 0
        self.rebalance_moved_keys = 0
        self.rebalance_moved_bytes = 0

    # ------------------------------------------------------------------
    # ring construction and lookup
    # ------------------------------------------------------------------

    def _admit(self, backend: StoreBackend) -> None:
        if backend.name in self.backends:
            raise ValueError(f"duplicate shard name {backend.name!r}")
        self.backends[backend.name] = backend
        self.shard_stats[backend.name] = ShardStats()

    def _rebuild_ring(self) -> None:
        points = []
        for name in self.backends:
            for replica in range(VNODES):
                points.append((_hash64(f"{name}#{replica}"), name))
        points.sort()
        self._ring = [p[0] for p in points]
        self._ring_shards = [p[1] for p in points]

    def shard_for(self, key: str) -> str:
        """The shard name ``key`` lives on under the current ring."""
        point = _hash64(key)
        index = bisect_right(self._ring, point) % len(self._ring)
        return self._ring_shards[index]

    def shard_names(self) -> List[str]:
        return sorted(self.backends)

    # ------------------------------------------------------------------
    # storage primitives routed through the ring
    # ------------------------------------------------------------------

    def _backend(self, key: str) -> StoreBackend:
        return self.backends[self.shard_for(key)]

    def _consult_shard(self, key: str, write: bool) -> None:
        """Shard-outage faults: a downed shard rejects all its IO."""
        if self.injector is not None:
            on_shard_op = getattr(self.injector, "on_shard_op", None)
            if on_shard_op is not None:
                try:
                    on_shard_op(self.shard_for(key), key, write)
                except StoreError:
                    self.faulted_ops += 1
                    raise

    def _get(self, key: str) -> Optional[bytes]:
        return self._backend(key).get(key)

    def _put(self, key: str, data: bytes) -> None:
        self._backend(key).put(key, data)

    def _remove(self, key: str) -> None:
        self._backend(key).remove(key)

    def _contains(self, key: str) -> bool:
        return self._backend(key).contains(key)

    def _key_list(self) -> List[str]:
        out: List[str] = []
        for backend in self.backends.values():
            out.extend(backend.keys())
        return out

    # ------------------------------------------------------------------
    # public API overrides: shard consultation + per-shard stats
    # ------------------------------------------------------------------

    def write(self, key: str, data: bytes) -> float:
        self._consult_shard(key, write=True)
        cost = super().write(key, data)
        stats = self.shard_stats[self.shard_for(key)]
        stats.writes += 1
        stats.bytes_written += len(data)
        stats.io_seconds += cost
        return cost

    def read(self, key: str) -> bytes:
        self._consult_shard(key, write=False)
        data = super().read(key)
        stats = self.shard_stats[self.shard_for(key)]
        stats.reads += 1
        stats.bytes_read += len(data)
        stats.io_seconds += self.cost(len(data))
        return data

    def delete(self, key: str) -> float:
        self._consult_shard(key, write=True)
        cost = super().delete(key)
        stats = self.shard_stats[self.shard_for(key)]
        stats.deletes += 1
        stats.io_seconds += cost
        return cost

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def add_shard(self, backend: StoreBackend) -> Dict[str, Any]:
        """Admit a new backend and migrate the keys that now hash to it."""
        self._admit(backend)
        return self._rebalance(f"add:{backend.name}")

    def remove_shard(self, name: str) -> Dict[str, Any]:
        """Retire a backend, migrating its keys to the survivors."""
        if name not in self.backends:
            raise KeyError(name)
        if len(self.backends) == 1:
            raise ValueError("cannot remove the last shard")
        retired = self.backends.pop(name)
        self.shard_stats.pop(name)
        self._rebuild_ring()
        # everything the retired plane held must move
        moved_keys = 0
        moved_bytes = 0
        for key in retired.keys():
            data = retired.get(key)
            retired.remove(key)
            if data is not None:
                self._backend(key).put(key, data)
                moved_keys += 1
                moved_bytes += len(data)
        report = self._finish_rebalance(f"remove:{name}", moved_keys,
                                        moved_bytes)
        return report

    def _rebalance(self, reason: str) -> Dict[str, Any]:
        """Move every key whose ring placement changed."""
        self._rebuild_ring()
        moved_keys = 0
        moved_bytes = 0
        for backend in list(self.backends.values()):
            for key in backend.keys():
                target = self.shard_for(key)
                if target != backend.name:
                    data = backend.get(key)
                    backend.remove(key)
                    if data is not None:
                        self.backends[target].put(key, data)
                        moved_keys += 1
                        moved_bytes += len(data)
        return self._finish_rebalance(reason, moved_keys, moved_bytes)

    def _finish_rebalance(self, reason: str, moved_keys: int,
                          moved_bytes: int) -> Dict[str, Any]:
        self.rebalances += 1
        self.rebalance_moved_keys += moved_keys
        self.rebalance_moved_bytes += moved_bytes
        total = sum(len(b.keys()) for b in self.backends.values())
        return {
            "reason": reason,
            "moved_keys": moved_keys,
            "moved_bytes": moved_bytes,
            "total_keys": total,
            "moved_fraction": (moved_keys / total) if total else 0.0,
            "shards": self.shard_names(),
        }

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def key_distribution(self) -> Dict[str, int]:
        """Keys per shard — how even the ring spread is."""
        return {name: len(backend.keys())
                for name, backend in sorted(self.backends.items())}

    def stats_snapshot(self) -> Dict[str, Any]:
        snap = super().stats_snapshot()
        snap["shards"] = {name: stats.snapshot()
                          for name, stats in sorted(self.shard_stats.items())}
        snap["key_distribution"] = self.key_distribution()
        snap["rebalances"] = self.rebalances
        snap["rebalance_moved_keys"] = self.rebalance_moved_keys
        return snap
