"""The write-ahead journal: group commit, checkpoint, torn-tail replay.

Netherite's core move — funnel a partition's updates through one commit
log so a batch of small writes costs one IO — applied to Vinz fiber
state.  A :class:`WriteAheadJournal` appends *batches*: every mutation
issued inside one operation window (continuation blob, task env,
fork thunks, reclamation deletes) becomes a single CRC-framed record,
amortizing the store's ~2 ms per-operation latency across the batch.

Records are framed with :func:`repro.vinz.persistence.crc_frame`, so a
write cut short by a crash (a *torn tail*) is detected by length/CRC
mismatch during :meth:`replay` and exactly the uncommitted suffix is
dropped — committed batches always survive, uncommitted ones never do.

Checkpoints bound replay time: every ``checkpoint_interval`` commits the
journal owner snapshots the full key space into a checkpoint frame and
truncates the log.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from ..bluebox.store import StoreWriteError
from ..vinz.persistence import crc_frame, parse_crc_frames

#: journal file header
JOURNAL_MAGIC = b"GZWJ1\n"
#: per-batch record frame magic
BATCH_MAGIC = b"GJB1"
#: checkpoint frame magic
CHECKPOINT_MAGIC = b"GJC1"

#: batch record ops
OP_PUT = "put"
OP_DELETE = "del"


class MemoryJournalStorage:
    """Journal bytes held in memory (the pure-simulation default)."""

    def __init__(self):
        self._buf = bytearray()

    def append(self, data: bytes) -> None:
        self._buf.extend(data)

    def read_all(self) -> bytes:
        return bytes(self._buf)

    def truncate(self, offset: int) -> None:
        del self._buf[offset:]

    def reset(self, data: bytes = b"") -> None:
        self._buf = bytearray(data)

    def size(self) -> int:
        return len(self._buf)


class FileJournalStorage:
    """Journal bytes on a real file — what the cross-process crash
    tests kill mid-batch.  Every append opens, writes and flushes, so
    bytes written before a process dies are on disk."""

    def __init__(self, path: str):
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        if not os.path.exists(path):
            with open(path, "wb"):
                pass

    def append(self, data: bytes) -> None:
        with open(self.path, "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def read_all(self) -> bytes:
        with open(self.path, "rb") as fh:
            return fh.read()

    def truncate(self, offset: int) -> None:
        with open(self.path, "r+b") as fh:
            fh.truncate(offset)

    def reset(self, data: bytes = b"") -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def size(self) -> int:
        return os.path.getsize(self.path)


#: one journaled mutation: (op, key, value-or-None)
Record = Tuple[str, str, Optional[bytes]]


def encode_batch(records: List[Record]) -> bytes:
    """One operation window's mutations as a single framed record."""
    return crc_frame(pickle.dumps(records, protocol=4), BATCH_MAGIC)


class SealedBatch:
    """A window's mutations, framed and priced but not yet on the log.

    Sealing happens when the operation handler finishes (so the commit
    cost lands inside the window's simulated duration); the physical
    append happens when the window *ends* — mirroring a transacted JMS
    session where the state write commits with the receive.  A window
    aborted in between (node death) simply discards its sealed batch:
    nothing ever reaches the log, so replay excludes it by construction.
    """

    __slots__ = ("records", "framed", "cost", "flushed")

    def __init__(self, records: List[Record], framed: bytes, cost: float,
                 flushed: bool = True):
        self.records = records
        self.framed = framed
        self.cost = cost
        #: whether this batch pays for its own physical flush
        #: (``op_latency``) or piggybacks on one already in flight —
        #: classic group commit: commits landing within one op latency
        #: of the last flush share it and pay only their bytes
        self.flushed = flushed

    def __len__(self) -> int:
        return len(self.records)


class WriteAheadJournal:
    """An append-only batch log with torn-tail detection.

    ``injector`` (optional, a :class:`repro.faults.FaultInjector`) is
    consulted per physical append and may tear the record: only a
    prefix of the frame reaches storage and the append raises — the
    simulation's stand-in for the writer dying mid-``write(2)``.
    """

    def __init__(self, storage=None):
        self.storage = storage if storage is not None \
            else MemoryJournalStorage()
        self.injector = None
        # statistics
        self.commits = 0
        self.records_committed = 0
        self.bytes_appended = 0
        #: physical IOs: commits that paid an ``op_latency`` flush of
        #: their own (the rest shared an in-flight flush — group commit)
        self.flushes = 0
        self.torn_appends = 0
        self.checkpoints = 0
        #: bytes of log verified good (appends past this may be torn)
        self._good_offset = self.storage.size()
        #: a torn append left garbage after _good_offset
        self._dirty_tail = False
        if self._good_offset == 0:
            self.storage.reset(JOURNAL_MAGIC)
            self._good_offset = len(JOURNAL_MAGIC)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append_batch(self, batch: SealedBatch) -> None:
        """Physically commit one sealed batch (a single IO).

        Raises :class:`StoreWriteError` when a torn-journal fault
        fires: the partial record is on storage (recovery will drop
        it), and the caller's window aborts so the platform retries.
        """
        self._repair_tail()
        framed = batch.framed
        if self.injector is not None:
            on_commit = getattr(self.injector, "on_journal_commit", None)
            if on_commit is not None:
                keep = on_commit(self.commits + 1, len(framed))
                if keep is not None:
                    self.storage.append(framed[:max(0, int(keep))])
                    self.torn_appends += 1
                    self._dirty_tail = True
                    raise StoreWriteError("torn journal record")
        self.storage.append(framed)
        self._good_offset += len(framed)
        self.commits += 1
        if getattr(batch, "flushed", True):
            self.flushes += 1
        self.records_committed += len(batch.records)
        self.bytes_appended += len(framed)

    def _repair_tail(self) -> None:
        """Restart-style recovery after a torn append: truncate the
        garbage suffix so the next append lands on a clean tail."""
        if self._dirty_tail:
            self.storage.truncate(self._good_offset)
            self._dirty_tail = False

    # ------------------------------------------------------------------
    # checkpoint / compaction
    # ------------------------------------------------------------------

    def checkpoint(self, state: Dict[str, bytes]) -> int:
        """Snapshot the full key space and truncate the log.

        Returns the checkpoint frame size.  Replay then starts from the
        snapshot instead of the beginning of time.
        """
        frame = crc_frame(pickle.dumps(state, protocol=4), CHECKPOINT_MAGIC)
        self.storage.reset(JOURNAL_MAGIC + frame)
        self._good_offset = len(JOURNAL_MAGIC) + len(frame)
        self._dirty_tail = False
        self.checkpoints += 1
        return len(frame)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def replay(self) -> Dict[str, Any]:
        """Reconstruct committed state from storage.

        Returns a report::

            {"state": {key: bytes-or-None},   # None = committed delete
             "checkpoint_keys": int,
             "batches": int, "records": int,
             "tail_error": None | str, "tail_bytes_dropped": int}

        ``state`` maps every key any committed batch (or the
        checkpoint) touched to its final committed value.  A torn or
        corrupt tail is dropped, never applied.
        """
        data = self.storage.read_all()
        offset = 0
        if data[:len(JOURNAL_MAGIC)] == JOURNAL_MAGIC:
            offset = len(JOURNAL_MAGIC)
        state: Dict[str, Optional[bytes]] = {}
        checkpoint_keys = 0
        # an optional leading checkpoint frame
        cp_payloads, cp_offset, cp_error = parse_crc_frames(
            data[:_frame_end(data, offset, CHECKPOINT_MAGIC)],
            CHECKPOINT_MAGIC, offset)
        if cp_payloads:
            snapshot = pickle.loads(cp_payloads[0])
            state.update(snapshot)
            checkpoint_keys = len(snapshot)
            offset = cp_offset
        payloads, good_offset, tail_error = parse_crc_frames(
            data, BATCH_MAGIC, offset)
        batches = 0
        records = 0
        for payload in payloads:
            for op, key, value in pickle.loads(payload):
                if op == OP_PUT:
                    state[key] = value
                else:
                    state[key] = None
            batches += 1
            records += len(pickle.loads(payload))
        return {
            "state": state,
            "checkpoint_keys": checkpoint_keys,
            "batches": batches,
            "records": records,
            "tail_error": tail_error,
            "tail_bytes_dropped": len(data) - good_offset
            if tail_error else 0,
        }

    def repair_after_replay(self, replay: Dict[str, Any]) -> int:
        """Truncate the torn/corrupt suffix a :meth:`replay` reported,
        so future appends land on a clean, replayable tail.  A recovery
        that skips this would write good batches *after* the garbage —
        invisible to every later replay.  Returns bytes dropped."""
        dropped = replay["tail_bytes_dropped"]
        if dropped:
            good = self.storage.size() - dropped
            self.storage.truncate(good)
            self._good_offset = good
            self._dirty_tail = False
        return dropped

    def stats_snapshot(self) -> Dict[str, Any]:
        return {
            "commits": self.commits,
            "records_committed": self.records_committed,
            "bytes_appended": self.bytes_appended,
            "flushes": self.flushes,
            "torn_appends": self.torn_appends,
            "checkpoints": self.checkpoints,
            "log_bytes": self.storage.size(),
        }


def _frame_end(data: bytes, offset: int, magic: bytes) -> int:
    """End offset of a single leading ``magic`` frame (or ``offset``
    when the stream does not start with one) — lets checkpoint and
    batch frames share one parser without ambiguity."""
    if data[offset:offset + len(magic)] != magic:
        return offset
    import struct as _struct

    header = data[offset + len(magic):offset + len(magic) + 8]
    if len(header) < 8:
        return len(data)
    length, _crc = _struct.unpack("<II", header)
    return min(len(data), offset + len(magic) + 8 + length)
