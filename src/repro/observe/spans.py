"""Causal spans: the tree-shaped upgrade of the flat TraceLog.

A :class:`Span` is a named interval of virtual (or real) time with a
parent link; a :class:`SpanTracer` owns them.  The span kinds the
platform emits, and how they nest for one task:

.. code-block:: text

    task:T1                               (root of the task's tree)
    └─ fiber:F1                           fiber lifetime
       └─ queue-hop RunFiber              enqueue -> delivery wait
          └─ op Sample.RunFiber           the operation window on a node
             └─ fiber-run F1              the GVM advancing the fiber
                ├─ persist.encode         continuation -> blob -> store
                ├─ queue-hop Market.Quote next causal step (a send)
                │  └─ op Market.Quote ...
                └─ ...

Parent ids travel in :class:`~repro.bluebox.messagequeue.Message`
headers (``parent_span``/``span_id``/``origin_span_id``), in the fiber
and task records (``span_id``), and in the
:class:`~repro.bluebox.services.OperationContext` (``span_id``), so the
tree survives node migrations.  Fault-driven redeliveries open a *new*
queue-hop span whose parent is the message's **original** hop span
(``retry_of`` attribute), so retries stay attached to the lifetime they
belong to instead of dangling.

Zero-cost-when-disabled contract: when ``enabled`` is False,
:meth:`SpanTracer.begin` returns 0 without allocating a Span, and every
call site in the platform guards on the single ``enabled`` flag before
building keyword arguments.  ``spans_created`` stays 0 for a disabled
run — tests assert exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple


class Span:
    """One timed interval in the causal tree."""

    __slots__ = ("id", "parent_id", "name", "kind", "start", "end",
                 "attrs", "annotations")

    def __init__(self, span_id: int, parent_id: int, name: str, kind: str,
                 start: float, attrs: Dict[str, Any]):
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        #: point-in-time marks inside the span: (time, name, attrs)
        self.annotations: List[Tuple[float, str, Dict[str, Any]]] = []

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:
        end = f"{self.end:.3f}" if self.end is not None else "..."
        return (f"<Span #{self.id} {self.kind}:{self.name} "
                f"[{self.start:.3f}, {end}] parent={self.parent_id}>")


class SpanTracer:
    """Owns every span of one simulated platform run.

    Span ids are positive integers; 0 means "no span" everywhere (the
    value hot paths carry when tracing is disabled).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: Dict[int, Span] = {}
        self._next_id = 1
        #: total Span objects allocated — the zero-cost guard metric
        self.spans_created = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def begin(self, name: str, kind: str, start: float,
              parent_id: Optional[int] = None, **attrs: Any) -> int:
        """Open a span; returns its id (0 when tracing is disabled)."""
        if not self.enabled:
            return 0
        span_id = self._next_id
        self._next_id += 1
        self.spans_created += 1
        self._spans[span_id] = Span(span_id, parent_id or 0, name, kind,
                                    start, attrs)
        return span_id

    def end(self, span_id: int, end: float, **attrs: Any) -> None:
        """Close a span; extra attrs are merged in."""
        if not self.enabled or not span_id:
            return
        span = self._spans.get(span_id)
        if span is None:
            return
        span.end = end
        if attrs:
            span.attrs.update(attrs)

    def annotate(self, span_id: int, time: float, name: str,
                 **attrs: Any) -> None:
        """Attach a point-in-time mark (e.g. an injected fault)."""
        if not self.enabled or not span_id:
            return
        span = self._spans.get(span_id)
        if span is not None:
            span.annotations.append((time, name, attrs))

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        return self._spans.get(span_id)

    def spans(self) -> List[Span]:
        return list(self._spans.values())

    def of_kind(self, *kinds: str) -> List[Span]:
        wanted = set(kinds)
        return [s for s in self._spans.values() if s.kind in wanted]

    def open_spans(self) -> List[Span]:
        return [s for s in self._spans.values() if s.end is None]

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self._spans.values() if s.parent_id == span_id]

    def child_index(self) -> Dict[int, List[Span]]:
        """parent id -> children, in creation order (one pass)."""
        index: Dict[int, List[Span]] = {}
        for span in self._spans.values():
            index.setdefault(span.parent_id, []).append(span)
        return index

    def ancestors(self, span_id: int) -> List[Span]:
        """The chain from ``span_id``'s parent up to its root."""
        chain: List[Span] = []
        span = self._spans.get(span_id)
        while span is not None and span.parent_id:
            span = self._spans.get(span.parent_id)
            if span is None:
                break
            chain.append(span)
        return chain

    def task_root(self, task_id: str) -> Optional[Span]:
        for span in self._spans.values():
            if span.kind == "task" and span.attrs.get("task") == task_id:
                return span
        return None

    def task_tree(self, task_id: str) -> List[Span]:
        """Every span reachable from the task's root span, preorder.

        This is the Figure-1 object: one task's complete distributed
        lifetime — queue hops, operation windows, fiber runs,
        persistence — as a single tree.
        """
        root = self.task_root(task_id)
        if root is None:
            return []
        index = self.child_index()
        out: List[Span] = []
        stack = [root]
        while stack:
            span = stack.pop()
            out.append(span)
            # reversed so preorder preserves creation order
            stack.extend(reversed(index.get(span.id, [])))
        return out

    def verify_parents(self) -> List[Span]:
        """Spans whose parent id doesn't resolve — integrity check."""
        return [s for s in self._spans.values()
                if s.parent_id and s.parent_id not in self._spans]

    def summary(self) -> Dict[str, Any]:
        by_kind: Dict[str, int] = {}
        for span in self._spans.values():
            by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
        return {
            "enabled": self.enabled,
            "created": self.spans_created,
            "open": sum(1 for s in self._spans.values() if s.end is None),
            "by_kind": by_kind,
        }

    def clear(self) -> None:
        self._spans.clear()

    # ------------------------------------------------------------------
    # rendering (the Figure-1 tree)
    # ------------------------------------------------------------------

    def render_tree(self, root: Span,
                    attr_keys: Iterable[str] = ("node", "msg", "attempt",
                                                "retry_of", "bytes")) -> str:
        """Indented text rendering of a span subtree."""
        index = self.child_index()
        lines: List[str] = []

        def visit(span: Span, depth: int) -> None:
            end = f"{span.end:.3f}" if span.end is not None else "..."
            bits = " ".join(f"{k}={span.attrs[k]}" for k in attr_keys
                            if k in span.attrs)
            lines.append(f"{'  ' * depth}{span.kind} {span.name} "
                         f"[{span.start:.3f} -> {end}]"
                         + (f" {bits}" if bits else ""))
            for time, name, _attrs in span.annotations:
                lines.append(f"{'  ' * (depth + 1)}@ {time:.3f} {name}")
            for child in index.get(span.id, []):
                visit(child, depth + 1)

        visit(root, 0)
        return "\n".join(lines)
