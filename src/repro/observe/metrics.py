"""The metrics registry: counters, gauges, fixed-bucket histograms.

The platform observes a standard set on every run (cheap enough to
leave always-on; ``enabled=False`` turns the whole registry into
no-ops for pure-speed benchmarks):

* ``queue.wait`` — seconds a message spent queued before delivery;
* ``fiber.resume_latency`` — queue wait of the message that resumed a
  suspended fiber (the migration cost the paper's cache exists to cut);
* ``persist.blob_bytes`` / ``codec.*_bytes`` — fiber snapshot sizes;
* ``gvm.run_instructions`` — GVM instructions per fiber run.

Histograms are fixed-bucket: ``observe`` is a bisect plus two adds, and
``p50/p95/p99`` come from linear interpolation inside the covering
bucket — no per-sample storage, so a million-message run costs a few
hundred bytes per histogram.

All mutation is lock-guarded, so counters stay exact when the cluster
runs in real-threaded mode (see also
:class:`repro.bluebox.monitoring.Counters`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence


def exponential_buckets(start: float, factor: float,
                        count: int) -> List[float]:
    """``count`` bucket upper bounds growing geometrically from
    ``start`` (e.g. ``exponential_buckets(0.001, 2, 12)``)."""
    out, value = [], start
    for _ in range(count):
        out.append(value)
        value *= factor
    return out


#: default latency buckets: 10 microseconds .. ~84 virtual seconds
DEFAULT_TIME_BUCKETS = exponential_buckets(1e-5, 2.0, 24)
#: default size buckets: 16 bytes .. 8 MiB
DEFAULT_SIZE_BUCKETS = exponential_buckets(16, 2.0, 20)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value: float = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """A fixed-bucket histogram with percentile snapshots.

    ``buckets`` are sorted upper bounds; one extra overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float],
                 lock: threading.Lock):
        self.name = name
        self.buckets: List[float] = sorted(buckets)
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            index = bisect_left(self.buckets, value)
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) by linear
        interpolation inside the covering bucket."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.buckets):
                    # overflow bucket: the best point estimate is the max
                    return self.max if self.max is not None else 0.0
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = self.buckets[index]
                fraction = (target - previous) / bucket_count
                estimate = lower + (upper - lower) * fraction
                # never report beyond the observed extremes
                if self.max is not None:
                    estimate = min(estimate, self.max)
                if self.min is not None:
                    estimate = max(estimate, self.min)
                return estimate
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class _Noop:
    """Shared do-nothing instrument for a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP = _Noop()


class MetricsRegistry:
    """Named instruments, created on first use.

    One registry per cluster; a disabled registry hands out a shared
    no-op instrument so call sites need no guards of their own.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    name, Counter(name, self._lock))
        return counter

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name, self._lock))
        return gauge

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get/create a histogram; ``buckets`` applies on first creation
        (later callers inherit them)."""
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        histogram = self._histograms.get(name)
        if histogram is None:
            bounds = buckets if buckets is not None else DEFAULT_TIME_BUCKETS
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, bounds, self._lock))
        return histogram

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump of every instrument (the JSON report)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self._histograms.items())},
        }
