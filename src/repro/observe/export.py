"""Trace exporters: Chrome ``trace_event`` JSON and a plain-JSON report.

The Chrome format is the JSON array/object understood by Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` viewer:
each finished span becomes a complete event (``"ph": "X"``) with
microsecond ``ts``/``dur``; nodes map to processes (``pid`` plus a
``process_name`` metadata record) and fibers to threads, so one task's
migration across machines is visible as its spans jumping between
process tracks.  Parent links travel in ``args`` (``span``/``parent``),
which is what the span-tree assertions in the Figure-1 bench check
after a JSON round trip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .spans import SpanTracer

#: virtual seconds -> trace_event microseconds
_US = 1e6


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def chrome_trace_events(tracer: SpanTracer) -> List[Dict[str, Any]]:
    """Every span (and annotation) as a ``trace_event`` record."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}

    def pid_for(name: str) -> int:
        pid = pids.get(name)
        if pid is None:
            pid = pids[name] = len(pids) + 1
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": name}})
        return pid

    def tid_for(pid: int, name: str) -> int:
        key = f"{pid}/{name}"
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": name}})
        return tid

    for span in tracer.spans():
        node = span.attrs.get("node")
        if node is None:
            node = "queue" if span.kind == "queue-hop" else "platform"
        pid = pid_for(str(node))
        lane = span.attrs.get("fiber") or span.attrs.get("task") or span.kind
        tid = tid_for(pid, str(lane))
        end = span.end if span.end is not None else span.start
        args = {"span": span.id, "parent": span.parent_id}
        for key, value in span.attrs.items():
            args[key] = _jsonable(value)
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": span.start * _US,
            "dur": max(end - span.start, 0.0) * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for time, name, attrs in span.annotations:
            events.append({
                "name": name,
                "cat": "annotation",
                "ph": "i",
                "s": "t",
                "ts": time * _US,
                "pid": pid,
                "tid": tid,
                "args": {"span": span.id,
                         **{k: _jsonable(v) for k, v in attrs.items()}},
            })
    return events


def chrome_trace(tracer: SpanTracer) -> Dict[str, Any]:
    """The full Perfetto-loadable document."""
    return {"traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: SpanTracer, path: str) -> str:
    """Serialize to ``path``; returns the path for convenience."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1)
    return path


def span_tree_from_events(events: List[Dict[str, Any]]) -> Dict[int, int]:
    """span id -> parent id, recovered from exported ``args`` — what a
    consumer (or a test) uses to rebuild the causal tree from the JSON
    alone, without the live tracer."""
    return {e["args"]["span"]: e["args"]["parent"]
            for e in events
            if e.get("ph") == "X" and "span" in e.get("args", {})}


def json_report(env) -> Dict[str, Any]:
    """The plain-JSON observability report for a VinzEnvironment:
    metrics snapshot (with percentiles), span summary, trace-log health
    and cache hit rates — everything the harness needs to publish."""
    cluster = env.cluster
    return {
        "virtual_time": cluster.kernel.now,
        "metrics": cluster.metrics.snapshot(),
        "spans": cluster.tracer.summary(),
        "trace_log": cluster.trace.snapshot(),
        "cache_hit_rates": env.cache_hit_rates(),
        "counters": env.counters.snapshot(),
        "store": env.store.stats_snapshot(),
        "history": (env.history.summary()
                    if getattr(env, "history", None) is not None else None),
    }
