"""Causal observability: span tracing, metrics, and trace exporters.

The paper leans on BlueBox's "monitoring and management features"
(Section 1), and its Figure 1 is literally a trace of one workflow's
lifetime across the queue, fibers, and persistence.  This package is
that layer for the reproduction:

* :mod:`repro.observe.spans` — a causal span tracer.  Spans form a
  tree (task -> fiber -> queue hop -> operation window -> fiber run ->
  persistence encode/decode); parent ids propagate through
  :class:`~repro.bluebox.messagequeue.Message` headers, fiber state and
  the Vinz service loop, so one task's full distributed lifetime
  reconstructs as a tree even across node migrations and fault-driven
  redeliveries.
* :mod:`repro.observe.metrics` — a :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms with p50/p95/p99
  snapshots (queue wait, fiber resume latency, blob sizes, ...).
* :mod:`repro.observe.export` — Chrome ``trace_event`` JSON (loadable
  in Perfetto / ``chrome://tracing``) and a plain-JSON report.

Tracing is zero-cost when disabled: every hot-path call site guards on
the tracer's single ``enabled`` flag before allocating anything.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, SpanTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "SpanTracer",
]
