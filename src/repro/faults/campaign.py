"""Reproducible chaos campaigns: a named ``(seed, FaultPlan)`` pair.

A campaign builds a fresh :class:`~repro.vinz.api.VinzEnvironment`,
deploys a small arithmetic workflow (fork-heavy enough to exercise
persistence, service calls and for-each distribution), installs a
:class:`~repro.faults.injector.FaultInjector` compiled from the plan,
starts a batch of tasks with seed-derived inputs and runs the virtual
clock until the cluster is idle.

Because every source of nondeterminism (task inputs, injector choices,
cluster placement, retry jitter) draws from RNGs seeded by the campaign
seed and everything runs on the discrete-event clock, the same
``(seed, plan)`` replays bit-identically — :meth:`CampaignReport.signature`
lets tests assert that directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bluebox.services import simple_service
from ..lang.symbols import Keyword
from ..vinz.api import VinzEnvironment
from ..vinz.task import COMPLETED
from .injector import FaultInjector
from .plan import FaultPlan
from .retry import RetryPolicy

#: the campaign workload: enrich each item through a data service inside
#: a for-each (forked fibers -> persists, locks, queue messages), then
#: aggregate.  Same arithmetic as the chaos tests: item -> item + 10*item.
CAMPAIGN_WORKFLOW = """
(deflink DS :wsdl "urn:campaign-data")

(defun main (params)
  ;; params: (:id n :items (...))
  (let* ((items (getf params :items))
         (enriched (for-each (x in items)
                     (compute 0.2)
                     (+ x (DS-Lookup-Method :Key x))))
         (total (apply #'+ enriched)))
    (list :id (getf params :id) :total total)))
"""

#: variant of the campaign workload that opts into the adaptive spawn
#: governor before fanning out: ``(auto-spawn-limit)`` flips the task's
#: spawn limit to the governor, and because the fan-out loop re-reads the
#: limit per iteration, injected latency/slowdown faults visibly shrink
#: the fan-out mid-flight (and it re-widens once the fault window ends).
ADAPTIVE_CAMPAIGN_WORKFLOW = """
(deflink DS :wsdl "urn:campaign-data")

(defun main (params)
  ;; params: (:id n :items (...))
  (auto-spawn-limit)
  (let* ((items (getf params :items))
         (enriched (for-each (x in items)
                     (compute 0.2)
                     (+ x (DS-Lookup-Method :Key x))))
         (total (apply #'+ enriched)))
    (list :id (getf params :id) :total total)))
"""

CAMPAIGN_NAMESPACE = "urn:campaign-data"


def data_service():
    """The backing service the campaign workflow calls per item."""

    def lookup(ctx, body):
        ctx.charge(0.15)
        return body.get("Key", 0) * 10

    return simple_service("CampaignData", {"Lookup": lookup},
                          namespace=CAMPAIGN_NAMESPACE,
                          parameters={"Lookup": ["Key"]})


def expected_total(items: List[int]) -> int:
    return sum(x + x * 10 for x in items)


@dataclass
class CampaignReport:
    """Everything a test needs to judge a finished campaign."""

    name: str
    seed: int
    env: VinzEnvironment
    injector: FaultInjector
    #: task-id -> the item list that task was started with
    inputs: Dict[str, List[int]] = field(default_factory=dict)

    # -- outcomes ----------------------------------------------------------

    @property
    def statuses(self) -> Dict[str, int]:
        return self.env.registry.counts()

    @property
    def completed(self) -> int:
        return self.statuses.get(COMPLETED, 0)

    @property
    def all_completed(self) -> bool:
        tasks = self.env.registry.tasks
        return bool(tasks) and all(t.status == COMPLETED
                                   for t in tasks.values())

    def wrong_results(self) -> List[Tuple[str, Any, Any]]:
        """(task-id, got, want) for every completed task whose total is
        arithmetically wrong.  Empty list == all answers correct."""
        wrong = []
        for task_id, items in self.inputs.items():
            task = self.env.registry.tasks.get(task_id)
            if task is None or task.status != COMPLETED:
                continue
            plist = {task.result[i].name: task.result[i + 1]
                     for i in range(0, len(task.result), 2)}
            want = expected_total(items)
            if plist.get("total") != want:
                wrong.append((task_id, plist.get("total"), want))
        return wrong

    # -- fault / queue accounting -----------------------------------------

    @property
    def injected(self) -> Dict[str, int]:
        return dict(self.injector.injected)

    @property
    def dead_lettered(self) -> int:
        return self.env.cluster.queue.dead_lettered

    @property
    def redelivered(self) -> int:
        return self.env.cluster.queue.redelivered

    @property
    def duplicated(self) -> int:
        return self.env.cluster.queue.duplicated

    def signature(self, *kinds: str):
        """Hashable trace signature for replay-determinism assertions."""
        return self.env.cluster.trace.signature(*kinds)

    # -- recovery invariants (the lease-recovery campaign's verdict) -------

    def stuck_fibers(self) -> List[str]:
        """Fiber ids that are neither finished nor advanceable: their
        task is over or their lock is still held by a dead owner's
        abandoned entry.  Empty list == the no-stranded-fibers
        invariant holds."""
        stuck = []
        locks = self.env.locks
        cluster = self.env.cluster
        for fiber_id, fiber in self.env.registry.fibers.items():
            if fiber.finished:
                continue
            task = self.env.registry.tasks.get(fiber.task_id)
            if task is not None and task.finished:
                # an unfinished fiber of a finished task is stranded
                stuck.append(fiber_id)
                continue
            holder = locks.holder(f"fiber/{fiber_id}")
            if holder is None:
                continue
            node_id = locks.owner_node(holder)
            node = cluster.nodes.get(node_id) if node_id else None
            if node is not None and not node.alive:
                stuck.append(fiber_id)
        return stuck

    def replay_all(self) -> List[Any]:
        """Replay every finished task from its recorded history
        (requires the campaign to have run with ``history="on"``);
        returns the per-task :class:`~repro.history.ReplayReport` list.
        Raises :class:`~repro.history.ReplayDivergenceError` on the
        first task whose re-execution disagrees with its log."""
        if self.env.replayer is None:
            raise RuntimeError(
                'replay_all requires run_campaign(history="on")')
        reports = []
        for task_id, task in self.env.registry.tasks.items():
            if not task.finished:
                continue
            reports.append(self.env.replay_task(task_id))
        return reports

    def single_runner_violations(self) -> List[Tuple[str, ...]]:
        """Violations of the one-runner-per-fiber guarantee, from the
        committed-window audit trail: a message that committed twice,
        or two windows of one fiber overlapping in virtual time.
        Empty list == no fiber was ever double-run."""
        violations: List[Tuple[str, ...]] = []
        seen_messages: Dict[Tuple[str, str], float] = {}
        by_fiber: Dict[str, List[Tuple[float, float, str]]] = {}
        for fiber_id, msg_id, start, end in self.env.runner_audit:
            if (fiber_id, msg_id) in seen_messages:
                violations.append(("duplicate-commit", fiber_id, msg_id))
            seen_messages[(fiber_id, msg_id)] = start
            by_fiber.setdefault(fiber_id, []).append((start, end, msg_id))
        for fiber_id, windows in by_fiber.items():
            windows.sort()
            for (s1, e1, m1), (s2, e2, m2) in zip(windows, windows[1:]):
                if s2 < e1:
                    violations.append(("overlap", fiber_id, m1, m2))
        return violations


def run_campaign(plan: FaultPlan, seed: int, name: str = "campaign",
                 tasks: int = 4, nodes: int = 4,
                 retry_policy: Optional[RetryPolicy] = None,
                 trace: bool = True,
                 spawn_limit: int = 3, store=None,
                 adaptive_spawn: bool = False,
                 scheduler: Any = None, admission: Any = None,
                 governor: Any = None,
                 items_range: Tuple[int, int] = (2, 5),
                 snapshots: str = "v1",
                 locks: str = "coordinator",
                 lease_ttl: Optional[float] = None,
                 history: str = "off",
                 snapshot_interval: int = 1,
                 recovery: str = "snapshot") -> CampaignReport:
    """Execute the named ``(seed, plan)`` chaos campaign to quiescence.

    ``retry_policy`` defaults to :meth:`RetryPolicy.default` — bounded
    exponential backoff with seeded jitter — so injected faults are
    retried a finite number of times and exhaustion dead-letters.
    ``store`` swaps the shared-store implementation (e.g. a
    :class:`~repro.durastore.DurableStore` for crash-recovery
    campaigns).  ``adaptive_spawn`` deploys the governor-opted workflow
    variant; ``scheduler``/``admission``/``governor`` pass through to
    :class:`~repro.vinz.api.VinzEnvironment` to exercise the
    ``repro.sched`` subsystem under faults.  ``items_range`` bounds the
    per-task item count: fan-outs wider than the spawn limit keep the
    Listing-3 throttle loop re-reading the limit for the whole run,
    which is what lets a governor campaign observe mid-flight
    adaptation.  ``snapshots="v2"`` deploys with incremental
    continuation snapshots, the target of torn-manifest and
    missing-chunk campaigns.  ``locks`` selects the lock backend
    (``"file"`` for lease-recovery campaigns: NFS locks have no
    failure detector, so only leases free a dead holder's lock) and
    ``lease_ttl`` overrides the platform's lease TTL.
    ``history="on"`` records every task's event-sourced history
    (enabling :meth:`CampaignReport.replay_all` and the
    :class:`~repro.faults.plan.HistoryFault` kinds);
    ``snapshot_interval`` persists continuations every N suspensions
    and ``recovery="replay"`` rebuilds crashed fibers from the history
    log instead of reading continuation snapshots (see
    docs/history_replay.md).
    """
    policy = retry_policy if retry_policy is not None \
        else RetryPolicy.default()
    lease_kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
    env = VinzEnvironment(nodes=nodes, seed=seed, trace=trace,
                          retry_policy=policy, store=store,
                          scheduler=scheduler, admission=admission,
                          governor=governor, locks=locks,
                          history=history,
                          snapshot_interval=snapshot_interval,
                          recovery=recovery,
                          **lease_kwargs)
    env.deploy_service(data_service())
    source = ADAPTIVE_CAMPAIGN_WORKFLOW if adaptive_spawn \
        else CAMPAIGN_WORKFLOW
    env.deploy_workflow("Campaign", source,
                        spawn_limit=spawn_limit, snapshots=snapshots)
    injector = FaultInjector(seed, plan).install(env)

    rng = random.Random(seed ^ 0x5EED)
    started: List[Tuple[int, List[int]]] = []
    for i in range(tasks):
        items = [rng.randint(1, 9)
                 for _ in range(rng.randint(*items_range))]
        started.append((i, items))
        env.cluster.send("Campaign", "Start",
                         {"params": [Keyword("id"), i,
                                     Keyword("items"), items]})
    env.cluster.run_until_idle()

    report = CampaignReport(name=name, seed=seed, env=env,
                            injector=injector)
    # map campaign ids back to task records via each task's params
    for task in env.registry.tasks.values():
        plist = {task.params[i].name: task.params[i + 1]
                 for i in range(0, len(task.params), 2)}
        for i, items in started:
            if plist.get("id") == i:
                report.inputs[task.id] = items
                break
    return report
