"""Retry policies: bounded attempts, exponential backoff, timeouts.

The paper's production system retries fiber messages effectively
forever ("a running AwakeFiber ... places itself back on the message
queue for later delivery", Section 5) and silently drops poison
messages once ``max_attempts`` is exhausted.  Production message-driven
systems instead degrade gracefully: a :class:`RetryPolicy` bounds the
attempts, spaces them with exponential backoff (jittered so retry
storms decorrelate), and gives up after an overall timeout — at which
point the message lands in the dead-letter queue
(:mod:`repro.bluebox.messagequeue`) instead of vanishing.

All jitter is drawn from a *seeded* RNG supplied by the caller, so a
fault campaign replays bit-identically (see
:mod:`repro.faults.injector`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a message is retried after a failed delivery.

    * ``max_attempts`` — dead-letter after this many delivery attempts.
      ``None`` defers to the message's own ``max_attempts`` cap (the
      platform's legacy behaviour, effectively retry-forever for fiber
      messages).
    * ``base_delay``/``multiplier``/``max_delay`` — attempt ``n`` waits
      ``min(base_delay * multiplier**(n-1), max_delay)`` seconds.
    * ``jitter`` — fraction of the computed delay randomized away:
      ``0.25`` means the actual delay is uniform in ``[0.75d, 1.25d]``.
    * ``timeout`` — overall per-message budget (virtual seconds since
      the message was first enqueued); exceeded → dead-letter without
      further attempts.
    """

    max_attempts: Optional[int] = 8
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    timeout: Optional[float] = None

    @classmethod
    def default(cls) -> "RetryPolicy":
        """The default production policy: 8 attempts, exponential
        backoff with ±25% jitter, no overall timeout."""
        return cls()

    @classmethod
    def platform(cls, redelivery_delay: float = 0.05) -> "RetryPolicy":
        """The legacy platform behaviour, expressed as a policy: the
        message's own ``max_attempts`` cap, a constant redelivery delay
        and no jitter — bit-identical to the pre-policy cluster."""
        return cls(max_attempts=None, base_delay=redelivery_delay,
                   multiplier=1.0, max_delay=redelivery_delay, jitter=0.0)

    def with_max_attempts(self, n: Optional[int]) -> "RetryPolicy":
        return replace(self, max_attempts=n)

    # ------------------------------------------------------------------

    def backoff_delay(self, attempt: int,
                      rng: Optional[random.Random] = None) -> float:
        """The delay before delivery attempt ``attempt + 1``.

        ``attempt`` is the number of attempts already made (1-based
        after the first failure).  Growth is exponential but bounded:
        the un-jittered delay never exceeds ``max_delay`` and the
        jittered delay never exceeds ``max_delay * (1 + jitter)``.
        """
        exponent = max(0, attempt - 1)
        raw = self.base_delay * (self.multiplier ** exponent)
        raw = min(raw, self.max_delay)
        if rng is not None and self.jitter > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def allows(self, attempts: int, fallback_cap: int) -> bool:
        """May a message with ``attempts`` failed deliveries try again?

        ``fallback_cap`` is the message's own ``max_attempts``, used
        when the policy declines to set a bound of its own.
        """
        cap = self.max_attempts if self.max_attempts is not None \
            else fallback_cap
        return attempts < cap

    def expired(self, first_enqueued_at: float, now: float) -> bool:
        """Has the message's overall retry budget run out?"""
        if self.timeout is None:
            return False
        return (now - first_enqueued_at) >= self.timeout
