"""Declarative fault schedules.

A :class:`FaultPlan` is a *data* description of every fault a chaos
campaign will inject: drop/duplicate/delay the Nth matching message,
fail or corrupt the Nth store IO touching a key prefix, crash/restart a
node at virtual time T (or on the Nth fiber persist), slow a node by a
factor.  Compiled with a seed into a
:class:`~repro.faults.injector.FaultInjector`, the same ``(seed, plan)``
pair replays bit-identically under the virtual clock — a failing
campaign is a name you can re-run, not a dice roll.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

# message fault actions
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
# store fault actions
FAIL_WRITE = "fail-write"
FAIL_READ = "fail-read"
CORRUPT_READ = "corrupt-read"
# node fault actions
CRASH = "crash"
SLOW = "slow"
# durable-store fault actions
SHARD_OUTAGE = "shard-outage"
TORN_COMMIT = "torn-commit"
# incremental-snapshot (persistsnap) fault actions
TORN_MANIFEST = "torn-manifest"
MISSING_CHUNK = "missing-chunk"
CORRUPT_CHUNK = "corrupt-chunk"
# history-log fault actions
TORN_TAIL = "torn-tail"
DROPPED_BATCH = "dropped-batch"
CORRUPT_FRAME = "corrupt-frame"


@dataclass(frozen=True)
class MessageFault:
    """Drop, duplicate or delay deliveries of matching messages.

    A message matches when ``service``/``operation`` match (``None`` is
    a wildcard).  The fault fires on matching deliveries number ``nth``
    through ``nth + count - 1`` (1-based).  Semantics follow JMS
    at-least-once delivery:

    * ``drop`` — the delivery is lost; the queue's redelivery machinery
      notices (an attempt is consumed) and the message retries per its
      :class:`~repro.faults.retry.RetryPolicy`, or dead-letters.
    * ``duplicate`` — the message is delivered *and* re-enqueued once,
      exercising receiver idempotence.
    * ``delay`` — delivery is postponed ``delay`` virtual seconds
      without consuming an attempt.
    """

    action: str
    service: Optional[str] = None
    operation: Optional[str] = None
    nth: int = 1
    count: int = 1
    delay: float = 0.5

    def __post_init__(self):
        if self.action not in (DROP, DUPLICATE, DELAY):
            raise ValueError(f"unknown message fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")

    def matches(self, service: str, operation: str) -> bool:
        return ((self.service is None or self.service == service)
                and (self.operation is None or self.operation == operation))


@dataclass(frozen=True)
class StoreFault:
    """Fail or corrupt shared-store IO touching ``key_prefix``.

    Fires on matching operations number ``nth`` through
    ``nth + count - 1`` (1-based, counted per fault).  ``fail-write``
    and ``fail-read`` raise an IO error before any state changes;
    ``corrupt-read`` models a checksum-detected corrupt block (the read
    fails rather than silently returning garbage).  All three abort the
    operation mid-window; the platform rolls back and retries the
    message per its retry policy.
    """

    action: str
    key_prefix: str = ""
    nth: int = 1
    count: int = 1

    def __post_init__(self):
        if self.action not in (FAIL_WRITE, FAIL_READ, CORRUPT_READ):
            raise ValueError(f"unknown store fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")

    def matches(self, key: str) -> bool:
        return key.startswith(self.key_prefix)


@dataclass(frozen=True)
class NodeFault:
    """Crash, restart or slow a node.

    * ``crash`` at virtual time ``at``, on the ``on_persist``-th
      fiber-state persist cluster-wide (death *during* persistence), or
      on the ``on_lock``-th fiber-lock acquisition cluster-wide (death
      the instant a node takes a fiber's lock — the worst case for the
      lease-recovery machinery); ``restart_after`` revives the node
      that many seconds later (``None`` = never).
    * ``slow`` multiplies every operation duration on the node by
      ``factor`` from ``at`` (default 0) for ``duration`` seconds
      (``None`` = forever).

    ``node`` may be empty: the injector picks one deterministically
    from the seeded RNG at install time.
    """

    action: str
    node: str = ""
    at: Optional[float] = None
    restart_after: Optional[float] = 1.0
    on_persist: Optional[int] = None
    on_lock: Optional[int] = None
    factor: float = 2.0
    duration: Optional[float] = None

    def __post_init__(self):
        if self.action not in (CRASH, SLOW):
            raise ValueError(f"unknown node fault action {self.action!r}")
        if self.action == CRASH and self.at is None \
                and self.on_persist is None and self.on_lock is None:
            raise ValueError("crash fault needs `at`, `on_persist` "
                             "or `on_lock`")
        if self.action == SLOW and self.factor <= 0:
            raise ValueError("slow factor must be positive")


@dataclass(frozen=True)
class ShardFault:
    """Take one shard of a :class:`~repro.durastore.ShardedStore` down.

    During the outage every IO routed to the shard fails (reads and
    writes, or writes only) — the simulation's stand-in for one storage
    plane dropping off the network while the others keep serving.

    Two firing modes:

    * **time window** — ``at`` (virtual seconds) for ``duration``
      seconds (``None`` = never recovers);
    * **op window** — when ``at`` is ``None``, matching operations
      number ``nth`` through ``nth + count - 1`` fail (1-based),
      mirroring :class:`StoreFault` determinism.

    ``shard`` may be empty: the injector picks one deterministically
    from the seeded RNG at install time (or matches any shard when it
    cannot see the ring).
    """

    action: str = SHARD_OUTAGE
    shard: str = ""
    at: Optional[float] = None
    duration: Optional[float] = None
    nth: int = 1
    count: int = 1
    writes_only: bool = False

    def __post_init__(self):
        if self.action != SHARD_OUTAGE:
            raise ValueError(f"unknown shard fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")


@dataclass(frozen=True)
class JournalFault:
    """Tear a write-ahead-journal group commit mid-append.

    Fires on journal append number ``nth`` through ``nth + count - 1``
    (1-based): only ``keep_fraction`` of the framed batch reaches
    storage and the append raises — the writer died inside ``write(2)``.
    The next replay must drop exactly the torn record; the aborted
    window's message retries per its policy.
    """

    action: str = TORN_COMMIT
    nth: int = 1
    count: int = 1
    keep_fraction: float = 0.5

    def __post_init__(self):
        if self.action != TORN_COMMIT:
            raise ValueError(f"unknown journal fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")


@dataclass(frozen=True)
class SnapshotFault:
    """Damage the incremental-snapshot (format v2) plane.

    * ``torn-manifest`` — the Nth manifest write cluster-wide is
      silently truncated to ``keep_fraction`` of its bytes (the writer
      died inside ``write(2)``); the tear surfaces on the next restore
      as a :class:`~repro.persistsnap.TornManifestError`.
    * ``missing-chunk`` — the Nth chunk read returns nothing, as if GC
      or an operator lost the content-addressed block.
    * ``corrupt-chunk`` — the Nth chunk read comes back with a bit
      flipped (position drawn from the injector's seeded RNG); the
      per-chunk digest check must catch it.

    Fires on matching operations number ``nth`` through
    ``nth + count - 1`` (1-based, counted per fault).  All three must
    surface as typed snapshot errors that abort the window for a
    policy-driven retry — never a wrong-value restore.
    """

    action: str
    nth: int = 1
    count: int = 1
    keep_fraction: float = 0.5

    def __post_init__(self):
        if self.action not in (TORN_MANIFEST, MISSING_CHUNK, CORRUPT_CHUNK):
            raise ValueError(f"unknown snapshot fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")


@dataclass(frozen=True)
class HistoryFault:
    """Damage the event-sourced history-log plane.

    * ``torn-tail`` — the Nth history-batch write cluster-wide is
      silently truncated to ``keep_fraction`` of its bytes (the writer
      died inside ``write(2)``); the tear must surface on the next
      replay as a :class:`~repro.history.TornHistoryError`.
    * ``dropped-batch`` — the Nth batch write is lost entirely (buffer
      never reached storage); replay must detect the hole as a
      :class:`~repro.history.DroppedBatchError`.
    * ``corrupt-frame`` — the Nth batch write lands with a bit flipped
      (position drawn from the injector's seeded RNG); the CRC frame
      check must catch it.

    Fires on history-batch writes number ``nth`` through
    ``nth + count - 1`` (1-based, counted per fault).  All three must
    fail closed — replay raises a typed error, never silently trusts a
    damaged history.
    """

    action: str
    nth: int = 1
    count: int = 1
    keep_fraction: float = 0.5

    def __post_init__(self):
        if self.action not in (TORN_TAIL, DROPPED_BATCH, CORRUPT_FRAME):
            raise ValueError(f"unknown history fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")


Fault = Union[MessageFault, StoreFault, NodeFault, ShardFault, JournalFault,
              SnapshotFault, HistoryFault]


@dataclass(frozen=True)
class FaultPlan:
    """A named, declarative schedule of faults.

    The plan is pure data; pair it with a seed and compile via
    :meth:`FaultInjector.install <repro.faults.injector.FaultInjector>`.
    ``describe()`` and ``to_dict()`` give a stable, human-readable
    identity for the campaign matrix.
    """

    faults: Tuple[Fault, ...] = ()
    name: str = ""

    def __init__(self, faults: Sequence[Fault] = (), name: str = ""):
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "name", name)

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + tuple(other),
                         name=self.name or other.name)

    def message_faults(self) -> List[MessageFault]:
        return [f for f in self.faults if isinstance(f, MessageFault)]

    def store_faults(self) -> List[StoreFault]:
        return [f for f in self.faults if isinstance(f, StoreFault)]

    def node_faults(self) -> List[NodeFault]:
        return [f for f in self.faults if isinstance(f, NodeFault)]

    def shard_faults(self) -> List[ShardFault]:
        return [f for f in self.faults if isinstance(f, ShardFault)]

    def journal_faults(self) -> List[JournalFault]:
        return [f for f in self.faults if isinstance(f, JournalFault)]

    def snapshot_faults(self) -> List[SnapshotFault]:
        return [f for f in self.faults if isinstance(f, SnapshotFault)]

    def history_faults(self) -> List[HistoryFault]:
        return [f for f in self.faults if isinstance(f, HistoryFault)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "faults": [dict(kind=type(f).__name__, **asdict(f))
                       for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        kinds = {"MessageFault": MessageFault, "StoreFault": StoreFault,
                 "NodeFault": NodeFault, "ShardFault": ShardFault,
                 "JournalFault": JournalFault,
                 "SnapshotFault": SnapshotFault,
                 "HistoryFault": HistoryFault}
        faults = []
        for entry in data.get("faults", []):
            entry = dict(entry)
            kind = kinds[entry.pop("kind")]
            faults.append(kind(**entry))
        return cls(faults, name=data.get("name", ""))

    def describe(self) -> str:
        """One line per fault, a stable campaign fingerprint."""
        lines = [f"FaultPlan {self.name or '<anonymous>'}:"]
        for f in self.faults:
            bits = ", ".join(f"{k}={v!r}" for k, v in asdict(f).items()
                             if v not in (None, ""))
            lines.append(f"  {type(f).__name__}({bits})")
        return "\n".join(lines)
