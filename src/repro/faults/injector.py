"""The compiled fault injector: seeded, deterministic, observable.

A :class:`FaultInjector` is a ``(seed, FaultPlan)`` pair compiled into
interception hooks.  ``install(env)`` wires it into a
:class:`~repro.vinz.api.VinzEnvironment`:

* the cluster consults :meth:`on_deliver` as each message is popped for
  delivery (drop / duplicate / delay);
* the shared store consults :meth:`on_store_write` / :meth:`on_store_read`
  before every IO (fail / corrupt);
* the cluster multiplies operation durations by :meth:`slow_factor`;
* Vinz calls :meth:`on_persist` after each fiber-state persist (crash
  *during* persistence);
* time-triggered crashes/restarts are scheduled on the virtual clock at
  install time.

Every injected fault is recorded as a ``fault.injected`` trace event
and counted, so a campaign can assert it actually exercised what it
claims to.  All randomness comes from ``random.Random(seed)``: the same
``(seed, plan)`` replays bit-identically.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..bluebox.store import StoreCorruptionError, StoreReadError, StoreWriteError
from .plan import (
    CORRUPT_CHUNK,
    CORRUPT_FRAME,
    CORRUPT_READ,
    CRASH,
    DELAY,
    DROP,
    DROPPED_BATCH,
    DUPLICATE,
    FAIL_READ,
    FAIL_WRITE,
    FaultPlan,
    HistoryFault,
    JournalFault,
    MISSING_CHUNK,
    MessageFault,
    NodeFault,
    SHARD_OUTAGE,
    SLOW,
    ShardFault,
    SnapshotFault,
    StoreFault,
    TORN_COMMIT,
    TORN_MANIFEST,
    TORN_TAIL,
)


class FaultInjector:
    """Deterministic interception hooks compiled from ``(seed, plan)``."""

    def __init__(self, seed: int, plan: FaultPlan):
        self.seed = seed
        self.plan = plan
        self.rng = random.Random(seed)
        self.env = None  # set by install()
        #: per-fault match counters (fault index -> matching events seen)
        self._seen: Dict[int, int] = {}
        #: cluster-wide fiber persist counter (crash-during-persistence)
        self.persists = 0
        #: cluster-wide fiber-lock acquisition counter (crash-on-lock)
        self.lock_acquisitions = 0
        #: how many faults of each action were actually injected
        self.injected: Dict[str, int] = {}
        #: node faults with a concrete node resolved at install time
        self._node_faults: List[NodeFault] = []
        #: shard faults: fault index -> resolved shard name ("" = any)
        self._shard_targets: Dict[int, str] = {
            i: f.shard for i, f in enumerate(plan.faults)
            if isinstance(f, ShardFault)}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def install(self, env) -> "FaultInjector":
        """Wire the hooks into a VinzEnvironment and schedule the
        time-triggered node faults on its virtual clock."""
        self.env = env
        env.injector = self
        env.cluster.injector = self
        env.store.injector = self
        history_log = getattr(env, "history_log", None)
        if history_log is not None:
            history_log.injector = self
        # resolve unnamed shard-outage targets against the store's ring
        shard_names = sorted(getattr(env.store, "backends", {}))
        if shard_names:
            for index, name in list(self._shard_targets.items()):
                if not name:
                    self._shard_targets[index] = self.rng.choice(shard_names)
        node_ids = sorted(env.cluster.nodes)
        for fault in self.plan.node_faults():
            node = fault.node or (self.rng.choice(node_ids) if node_ids
                                  else "")
            resolved = NodeFault(action=fault.action, node=node,
                                 at=fault.at,
                                 restart_after=fault.restart_after,
                                 on_persist=fault.on_persist,
                                 on_lock=fault.on_lock,
                                 factor=fault.factor,
                                 duration=fault.duration)
            self._node_faults.append(resolved)
            if resolved.action == CRASH and resolved.at is not None:
                env.cluster.kernel.schedule_at(
                    resolved.at, lambda f=resolved: self._crash(f))
        return self

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _record(self, action: str, span: int = 0, **detail: Any) -> None:
        self.injected[action] = self.injected.get(action, 0) + 1
        if self.env is not None:
            cluster = self.env.cluster
            cluster.trace.record(cluster.kernel.now, "fault.injected",
                                 action=action, **detail)
            cluster.counters.incr("fault.injected")
            cluster.counters.incr(f"fault.injected.{action}")
            if span and cluster.tracer.enabled:
                # faults become annotations on the span they hit, so a
                # rendered task tree shows exactly where chaos struck
                cluster.tracer.annotate(span, cluster.kernel.now,
                                        f"fault.{action}", **detail)

    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # match bookkeeping
    # ------------------------------------------------------------------

    def _triggered(self, index: int, nth: int, count: int) -> bool:
        """Count one matching event for fault ``index``; True when the
        occurrence number falls inside the fault's [nth, nth+count)
        firing window."""
        seen = self._seen.get(index, 0) + 1
        self._seen[index] = seen
        return nth <= seen < nth + count

    # ------------------------------------------------------------------
    # message hooks (called by Cluster._dispatch_one)
    # ------------------------------------------------------------------

    def on_deliver(self, message) -> Optional[Tuple[str, float]]:
        """Decide the fate of a delivery: ``None`` (deliver normally),
        ``("drop", 0)``, ``("duplicate", 0)`` or ``("delay", seconds)``.

        Every message fault whose selector matches counts the delivery;
        the first fault whose firing window covers it wins.
        """
        decision: Optional[Tuple[str, float]] = None
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, MessageFault):
                continue
            if not fault.matches(message.service, message.operation):
                continue
            if self._triggered(index, fault.nth, fault.count) \
                    and decision is None:
                decision = (fault.action, fault.delay)
        if decision is not None:
            action, delay = decision
            detail = dict(msg=message.id, service=message.service,
                          operation=message.operation)
            if action == DELAY:
                detail["delay"] = delay
            self._record(action, span=message.span_id, **detail)
        return decision

    # ------------------------------------------------------------------
    # store hooks (called by SharedStore.write / SharedStore.read)
    # ------------------------------------------------------------------

    def on_store_write(self, key: str) -> None:
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, StoreFault) or fault.action != FAIL_WRITE:
                continue
            if not fault.matches(key):
                continue
            if self._triggered(index, fault.nth, fault.count):
                self._record(FAIL_WRITE, key=key)
                raise StoreWriteError(key)

    def on_store_read(self, key: str) -> None:
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, StoreFault) \
                    or fault.action not in (FAIL_READ, CORRUPT_READ):
                continue
            if not fault.matches(key):
                continue
            if self._triggered(index, fault.nth, fault.count):
                self._record(fault.action, key=key)
                if fault.action == FAIL_READ:
                    raise StoreReadError(key)
                raise StoreCorruptionError(key)

    # ------------------------------------------------------------------
    # durable-store hooks (ShardedStore._consult_shard /
    # WriteAheadJournal.append_batch)
    # ------------------------------------------------------------------

    def _now(self) -> float:
        if self.env is not None:
            return self.env.cluster.kernel.now
        return 0.0

    def on_shard_op(self, shard: str, key: str, write: bool) -> None:
        """Shard-outage faults: raise if ``shard`` is down for this IO."""
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, ShardFault):
                continue
            target = self._shard_targets.get(index, fault.shard)
            if target and target != shard:
                continue
            if fault.writes_only and not write:
                continue
            if fault.at is not None:
                now = self._now()
                end = (fault.at + fault.duration) \
                    if fault.duration is not None else float("inf")
                fired = fault.at <= now < end
            else:
                fired = self._triggered(index, fault.nth, fault.count)
            if fired:
                self._record(SHARD_OUTAGE, shard=shard, key=key,
                             write=write)
                if write:
                    raise StoreWriteError(key)
                raise StoreReadError(key)

    def on_journal_commit(self, commit_index: int,
                          frame_len: int) -> Optional[int]:
        """Torn-commit faults: return how many bytes of the framed
        batch reach storage before the writer dies (``None`` = the
        append succeeds whole)."""
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, JournalFault):
                continue
            if self._triggered(index, fault.nth, fault.count):
                keep = int(frame_len * fault.keep_fraction)
                self._record(TORN_COMMIT, commit=commit_index,
                             frame_len=frame_len, kept=keep)
                return keep
        return None

    # ------------------------------------------------------------------
    # incremental-snapshot hooks (WorkflowService._persist_continuation_v2
    # / SnapshotPipeline.fetch_state)
    # ------------------------------------------------------------------

    def on_manifest_write(self, key: str, blob: bytes) -> bytes:
        """Torn-manifest faults: return what actually reaches storage.
        The tear is *silent* — the writer believes the write succeeded;
        the damage surfaces on the next restore as a
        ``TornManifestError`` and the fiber's message retries."""
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, SnapshotFault) \
                    or fault.action != TORN_MANIFEST:
                continue
            if self._triggered(index, fault.nth, fault.count):
                keep = int(len(blob) * fault.keep_fraction)
                self._record(TORN_MANIFEST, key=key,
                             blob_len=len(blob), kept=keep)
                return blob[:keep]
        return blob

    def on_chunk_read(self, key: str,
                      payload: Optional[bytes]) -> Optional[bytes]:
        """Missing-chunk / corrupt-chunk faults on the content-addressed
        read path: return ``None`` (the block is gone) or the payload
        with one bit flipped (the per-chunk digest check must catch
        it).  Only healthy reads count toward firing windows."""
        if payload is None:
            return None
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, SnapshotFault) \
                    or fault.action not in (MISSING_CHUNK, CORRUPT_CHUNK):
                continue
            if self._triggered(index, fault.nth, fault.count):
                self._record(fault.action, key=key, payload_len=len(payload))
                if fault.action == MISSING_CHUNK:
                    return None
                flipped = bytearray(payload)
                position = self.rng.randrange(len(flipped)) if flipped else 0
                if flipped:
                    flipped[position] ^= 1 << self.rng.randrange(8)
                return bytes(flipped)
        return payload

    # ------------------------------------------------------------------
    # history-log hooks (HistoryLog.append_batch)
    # ------------------------------------------------------------------

    def on_history_write(self, key: str, blob: bytes) -> Optional[bytes]:
        """History-fault hooks on the batch-append path: return what
        actually reaches storage — ``None`` (the batch is lost
        entirely), a truncated frame (the writer died mid-``write``),
        or the frame with one bit flipped (the CRC check must catch
        it).  All silent: the writer believes the append succeeded; the
        damage surfaces on the next replay as a typed history error."""
        for index, fault in enumerate(self.plan.faults):
            if not isinstance(fault, HistoryFault):
                continue
            if self._triggered(index, fault.nth, fault.count):
                if fault.action == DROPPED_BATCH:
                    self._record(DROPPED_BATCH, key=key,
                                 blob_len=len(blob))
                    return None
                if fault.action == TORN_TAIL:
                    keep = int(len(blob) * fault.keep_fraction)
                    self._record(TORN_TAIL, key=key, blob_len=len(blob),
                                 kept=keep)
                    return blob[:keep]
                flipped = bytearray(blob)
                position = self.rng.randrange(len(flipped)) if flipped else 0
                if flipped:
                    flipped[position] ^= 1 << self.rng.randrange(8)
                self._record(CORRUPT_FRAME, key=key, blob_len=len(blob),
                             position=position)
                return bytes(flipped)
        return blob

    # ------------------------------------------------------------------
    # node hooks
    # ------------------------------------------------------------------

    def slow_factor(self, node_id: str, now: float) -> float:
        """Product of every active slow fault on ``node_id``."""
        factor = 1.0
        for fault in self._node_faults:
            if fault.action != SLOW or fault.node != node_id:
                continue
            start = fault.at if fault.at is not None else 0.0
            end = (start + fault.duration) if fault.duration is not None \
                else float("inf")
            if start <= now < end:
                factor *= fault.factor
        return factor

    def _crash(self, fault: NodeFault) -> None:
        if self.env is None:
            return
        node = self.env.cluster.nodes.get(fault.node)
        if node is None or not node.alive:
            return
        self._record(CRASH, node=fault.node)
        self.env.fail_node(fault.node)
        if fault.restart_after is not None:
            self.env.cluster.kernel.schedule(
                fault.restart_after,
                lambda n=fault.node: self.env.restore_node(n))

    def on_persist(self, ctx, fiber) -> None:
        """Called by Vinz after each fiber-state persist; fires
        crash-during-persistence faults against the persisting node."""
        self.persists += 1
        for fault in self._node_faults:
            if fault.action == CRASH and fault.on_persist is not None \
                    and fault.on_persist == self.persists:
                node = ctx.node
                if node.alive:
                    self._record("crash-on-persist",
                                 span=getattr(ctx, "span_id", 0),
                                 node=node.id, fiber=fiber.id,
                                 persist=self.persists)
                    self.env.fail_node(node.id)
                    if fault.restart_after is not None:
                        self.env.cluster.kernel.schedule(
                            fault.restart_after,
                            lambda n=node.id: self.env.restore_node(n))

    def on_lock_acquired(self, ctx, fiber) -> None:
        """Called by Vinz right after a fiber-lock acquisition (with
        the window's abort hooks already registered); fires
        crash-on-lock faults — the node dies the instant it takes the
        lock, the worst case for lease recovery: nothing was persisted,
        the lock entry survives, and only the lease can free it."""
        self.lock_acquisitions += 1
        for fault in self._node_faults:
            if fault.action == CRASH and fault.on_lock is not None \
                    and fault.on_lock == self.lock_acquisitions:
                node = ctx.node
                if node.alive:
                    self._record("crash-on-lock",
                                 span=getattr(ctx, "span_id", 0),
                                 node=node.id, fiber=fiber.id,
                                 acquisition=self.lock_acquisitions)
                    self.env.fail_node(node.id)
                    if fault.restart_after is not None:
                        self.env.cluster.kernel.schedule(
                            fault.restart_after,
                            lambda n=node.id: self.env.restore_node(n))
