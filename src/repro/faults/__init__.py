"""Deterministic fault injection: plans, injectors, retry policies.

The survivability story (paper Sections 1 and 3.2) as a *regression
suite*: a seeded :class:`FaultPlan` compiled into a
:class:`FaultInjector` replays the same faults bit-identically under
the virtual clock, and :class:`RetryPolicy` + the message queue's
dead-letter machinery bound how the platform degrades when retries run
out.

The chaos-campaign harness lives in :mod:`repro.faults.campaign`
(imported separately — it pulls in the full Vinz stack).
"""

from .retry import RetryPolicy
from .plan import (
    CORRUPT_CHUNK,
    CORRUPT_FRAME,
    CORRUPT_READ,
    CRASH,
    DELAY,
    DROP,
    DROPPED_BATCH,
    DUPLICATE,
    FAIL_READ,
    FAIL_WRITE,
    Fault,
    FaultPlan,
    HistoryFault,
    JournalFault,
    MISSING_CHUNK,
    MessageFault,
    NodeFault,
    SHARD_OUTAGE,
    SLOW,
    ShardFault,
    SnapshotFault,
    StoreFault,
    TORN_COMMIT,
    TORN_MANIFEST,
    TORN_TAIL,
)
from .injector import FaultInjector

__all__ = [
    "RetryPolicy",
    "FaultPlan", "Fault", "MessageFault", "StoreFault", "NodeFault",
    "ShardFault", "JournalFault", "SnapshotFault", "HistoryFault",
    "FaultInjector",
    "DROP", "DUPLICATE", "DELAY",
    "FAIL_WRITE", "FAIL_READ", "CORRUPT_READ",
    "CRASH", "SLOW",
    "SHARD_OUTAGE", "TORN_COMMIT",
    "TORN_MANIFEST", "MISSING_CHUNK", "CORRUPT_CHUNK",
    "TORN_TAIL", "DROPPED_BATCH", "CORRUPT_FRAME",
]
